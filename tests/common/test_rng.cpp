#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace mifo {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 100.0;
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.0002);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Hash64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should change roughly half the output bits.
  const std::uint64_t base = hash64(0x1234567890abcdefull);
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t flipped = hash64(0x1234567890abcdefull ^ (1ull << bit));
    const int popcount = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(popcount, 10);
    EXPECT_LT(popcount, 54);
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (std::size_t i = 1; i <= 100; ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankOneIsMostLikely) {
  const ZipfSampler zipf(1000, 1.2);
  EXPECT_GT(zipf.pmf(1), zipf.pmf(2));
  EXPECT_GT(zipf.pmf(2), zipf.pmf(10));
  EXPECT_GT(zipf.pmf(10), zipf.pmf(1000));
}

TEST(Zipf, AlphaZeroIsUniform) {
  const ZipfSampler zipf(50, 0.0);
  for (std::size_t i = 1; i <= 50; ++i) {
    EXPECT_NEAR(zipf.pmf(i), 1.0 / 50.0, 1e-9);
  }
}

TEST(Zipf, SampleFrequenciesTrackPmf) {
  const ZipfSampler zipf(10, 1.0);
  Rng rng(31);
  std::array<int, 11> counts{};
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const std::size_t r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    ++counts[r];
  }
  for (std::size_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HigherAlphaConcentratesMass) {
  const double alpha = GetParam();
  const ZipfSampler zipf(1000, alpha);
  const ZipfSampler flatter(1000, alpha / 2.0);
  // Top-10 mass grows with alpha.
  double top = 0.0;
  double top_flat = 0.0;
  for (std::size_t i = 1; i <= 10; ++i) {
    top += zipf.pmf(i);
    top_flat += flatter.pmf(i);
  }
  EXPECT_GT(top, top_flat);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSkewTest,
                         ::testing::Values(0.8, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace mifo
