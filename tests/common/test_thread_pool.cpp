#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace mifo {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeRespectsRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Serial fallback preserves order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long> partial(10000);
  parallel_for(pool, partial.size(), [&partial](std::size_t i) {
    partial[i] = static_cast<long>(i) * 3;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 3L * 9999L * 10000L / 2L);
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> c{0};
  parallel_for(global_pool(), 10, [&c](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 10);
}

}  // namespace
}  // namespace mifo
