#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mifo {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeRespectsRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Serial fallback preserves order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long> partial(10000);
  parallel_for(pool, partial.size(), [&partial](std::size_t i) {
    partial[i] = static_cast<long>(i) * 3;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 3L * 9999L * 10000L / 2L);
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> c{0};
  parallel_for(global_pool(), 10, [&c](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 10);
}

TEST(ParallelFor, RangeOverloadCoversExactlyTheHalfOpenInterval) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 37, 73, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 37 && i < 73) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, EmptyAndInvertedRanges) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&called](std::size_t) { called = true; });
  parallel_for(pool, 7, 3, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, OddSizedRangesNotDivisibleByChunking) {
  ThreadPool pool(4);
  // Sizes around the worker*4 chunking boundary, including primes.
  for (const std::size_t n : {1u, 2u, 3u, 5u, 15u, 16u, 17u, 97u, 1009u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << n;
  }
}

TEST(ParallelFor, PropagatesExceptionFromWorkerTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    parallel_for(pool, 1000, [&ran](std::size_t i) {
      ran.fetch_add(1);
      if (i == 137) throw std::runtime_error("boom at 137");
    });
    FAIL() << "expected exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
  // Iterations not yet claimed when the exception hit were abandoned.
  EXPECT_LE(ran.load(), 1000);
  // The pool must remain usable afterwards.
  std::atomic<int> c{0};
  parallel_for(pool, 10, [&c](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 10);
}

TEST(ParallelFor, PropagatesExceptionOnSerialFallbackToo) {
  ThreadPool pool(1);
  EXPECT_THROW(
      parallel_for(pool, 5, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, NestedSubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &outer, &inner] {
      outer.fetch_add(1);
      pool.submit([&inner] { inner.fetch_add(1); });
    });
  }
  pool.wait_idle();  // counts the nested tasks: submitted before parent ends
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ParallelFor, NestedParallelForInsideAPoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer iterations
  std::atomic<int> total{0};
  parallel_for(pool, 4, [&pool, &total](std::size_t) {
    parallel_for(pool, 4, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelFor, ConcurrentCallsOnTheSharedPoolStayIndependent) {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread t([&b] {
    parallel_for(global_pool(), 500, [&b](std::size_t) { b.fetch_add(1); });
  });
  parallel_for(global_pool(), 500, [&a](std::size_t) { a.fetch_add(1); });
  t.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 500);
}

}  // namespace
}  // namespace mifo
