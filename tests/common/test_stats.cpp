#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mifo {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeMatchesSinglePassOnRandomSplits) {
  // Split the same stream at random points; merged halves must agree with
  // the single-pass accumulation regardless of where the cut lands.
  Rng rng(11);
  std::vector<double> xs;
  xs.reserve(2000);
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.uniform(-1e3, 1e3));
  RunningStats all;
  for (const double x : xs) all.add(x);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cut = static_cast<std::size_t>(rng.bounded(xs.size() + 1));
    RunningStats a;
    RunningStats b;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < cut ? a : b).add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-8);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_NEAR(a.sum(), all.sum(), 1e-6);
  }
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Cdf, AtAndFractionAtLeast) {
  Cdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(3.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(4.1), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(0.0), 1.0);
}

TEST(Cdf, Quantiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_NEAR(cdf.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
}

TEST(Cdf, EmptyIsSafeExceptQuantile) {
  const Cdf cdf;
  EXPECT_DOUBLE_EQ(cdf.at(42.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(42.0), 0.0);
  // quantile() contracts on non-empty input; no call here.
}

TEST(Cdf, SingleElementQuantiles) {
  Cdf cdf;
  cdf.add(7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.at(6.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(7.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(7.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(7.1), 0.0);
}

TEST(Cdf, FractionAtLeastBoundaryIsInclusive) {
  Cdf cdf;
  for (double x : {1.0, 2.0, 2.0, 3.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(2.0), 0.75);  // both 2.0s count
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(3.0), 0.25);
}

TEST(Cdf, TableMonotone) {
  Cdf cdf;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) cdf.add(rng.uniform(0, 1000));
  const auto rows = cdf.table(0, 1000, 11);
  ASSERT_EQ(rows.size(), 11u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].second, rows[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(rows.back().second, 100.0);
}

TEST(Cdf, AddAllMatchesIndividualAdds) {
  Cdf a;
  Cdf b;
  std::vector<double> xs{5, 1, 3, 2, 4};
  for (double x : xs) a.add(x);
  b.add_all(xs);
  EXPECT_DOUBLE_EQ(a.at(2.5), b.at(2.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 1.0);
}

TEST(Histogram, MergeSumsBins) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.5);
  b.add(-3.0);  // clamps into bin 0
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin_count(0), 3u);
  EXPECT_EQ(a.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(a.low(), 0.0);
  EXPECT_DOUBLE_EQ(a.high(), 10.0);
}

TEST(IntCounter, CountsAndFractions) {
  IntCounter c;
  c.add(1);
  c.add(1);
  c.add(2);
  c.add(5);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.count_of(1), 2u);
  EXPECT_EQ(c.count_of(3), 0u);
  EXPECT_DOUBLE_EQ(c.fraction_of(1), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(2), 0.75);
  EXPECT_EQ(c.max_value(), 5u);
}

TEST(IntCounter, EmptyIsSafe) {
  IntCounter c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.fraction_of(0), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(10), 0.0);
  EXPECT_EQ(c.max_value(), 0u);
}

TEST(FormatTable, AlignsColumns) {
  const std::string out = format_table({"a", "bb"}, {{"xxx", "y"}});
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("xxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace mifo
