// Chaos-plan tests: DSL parse/format round-trips, paired-failure and
// periodic expansion, malformed input, and the seeded generator's
// determinism and structural invariants (docs/CHAOS.md).

#include <gtest/gtest.h>

#include "chaos/plan.hpp"
#include "topo/generator.hpp"

namespace mifo::chaos {
namespace {

TEST(ChaosPlan, ParsesEveryDirectiveKind) {
  const std::string text =
      "# a scripted scenario\n"
      "duration 2.0\n"
      "at 0.1 link-down 1 2\n"
      "at 0.2 link-up 1 2\n"
      "at 0.3 degrade 3 4 0.25\n"
      "at 0.4 restore 3 4\n"
      "at 0.5 withdraw 5\n"
      "at 0.6 reannounce 5\n"
      "at 0.7 ibgp-drop 6\n"
      "at 0.8 ibgp-restore 6\n"
      "at 0.9 freeze 7\n"
      "at 1.0 restart 7\n"
      "at 1.1 burst 8 9 4 2.5\n"
      "at 1.2 plant-valley\n";
  std::string error;
  const auto plan = parse_plan(text, error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_DOUBLE_EQ(plan->duration, 2.0);
  ASSERT_EQ(plan->events.size(), 12u);
  EXPECT_EQ(plan->events.front().kind, EventKind::LinkDown);
  EXPECT_EQ(plan->events.back().kind, EventKind::PlantValley);
  const Event& burst = plan->events[10];
  EXPECT_EQ(burst.kind, EventKind::Burst);
  EXPECT_EQ(burst.a, AsId(8));
  EXPECT_EQ(burst.b, AsId(9));
  EXPECT_EQ(burst.count, 4u);
  EXPECT_DOUBLE_EQ(burst.value, 2.5);
}

TEST(ChaosPlan, FormatParseRoundTripIsIdentity) {
  const std::string text =
      "duration 1.5\n"
      "at 0.2 degrade 1 2 0.5\n"
      "at 0.4 withdraw 3\n"
      "at 0.6 burst 0 3 2 1.0\n"
      "at 0.9 restore 1 2\n";
  std::string error;
  const auto plan = parse_plan(text, error);
  ASSERT_TRUE(plan.has_value()) << error;
  const std::string once = format_plan(*plan);
  const auto reparsed = parse_plan(once, error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(format_plan(*reparsed), once);
  ASSERT_EQ(reparsed->events.size(), plan->events.size());
  for (std::size_t i = 0; i < plan->events.size(); ++i) {
    EXPECT_EQ(reparsed->events[i].kind, plan->events[i].kind) << i;
    EXPECT_DOUBLE_EQ(reparsed->events[i].t, plan->events[i].t) << i;
  }
}

TEST(ChaosPlan, FailDirectiveExpandsToPairedEvents) {
  std::string error;
  const auto plan = parse_plan(
      "duration 1\n"
      "fail 0.2 mttr 0.3 link 1 2\n"
      "fail 0.4 mttr 0.2 prefix 5\n"
      "fail 0.5 mttr 0.1 ibgp 6\n"
      "fail 0.6 mttr 0.1 router 7\n",
      error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 8u);
  // Sorted by time, each failure followed by its recovery at t + mttr.
  EXPECT_EQ(plan->events[0].kind, EventKind::LinkDown);
  EXPECT_DOUBLE_EQ(plan->events[0].t, 0.2);
  EXPECT_EQ(plan->events[1].kind, EventKind::Withdraw);
  const auto find = [&](EventKind k) -> const Event* {
    for (const auto& e : plan->events) {
      if (e.kind == k) return &e;
    }
    return nullptr;
  };
  ASSERT_NE(find(EventKind::LinkUp), nullptr);
  EXPECT_DOUBLE_EQ(find(EventKind::LinkUp)->t, 0.5);
  ASSERT_NE(find(EventKind::Reannounce), nullptr);
  EXPECT_DOUBLE_EQ(find(EventKind::Reannounce)->t, 0.6);
  ASSERT_NE(find(EventKind::IbgpRestore), nullptr);
  ASSERT_NE(find(EventKind::RouterRestart), nullptr);
  for (std::size_t i = 1; i < plan->events.size(); ++i) {
    EXPECT_LE(plan->events[i - 1].t, plan->events[i].t);
  }
}

TEST(ChaosPlan, EveryDirectiveExpandsUntilDuration) {
  std::string error;
  const auto plan = parse_plan(
      "duration 1\n"
      "every 0.1 0.2 ibgp-drop 3\n",
      error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_GE(plan->events.size(), 4u);
  SimTime prev = -1.0;
  for (const auto& e : plan->events) {
    EXPECT_EQ(e.kind, EventKind::IbgpDrop);
    EXPECT_EQ(e.a, AsId(3));
    EXPECT_GT(e.t, prev);
    EXPECT_LT(e.t, plan->duration);
    prev = e.t;
  }
  EXPECT_DOUBLE_EQ(plan->events.front().t, 0.1);
}

TEST(ChaosPlan, MalformedInputYieldsErrorNotPlan) {
  std::string error;
  EXPECT_FALSE(parse_plan("at 0.1 link-down 1\n", error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_plan("frobnicate 1 2\n", error).has_value());
  EXPECT_FALSE(parse_plan("at x link-down 1 2\n", error).has_value());
  EXPECT_FALSE(parse_plan("fail 0.1 mttr 0.1 teapot 1\n", error).has_value());
}

TEST(ChaosPlan, RecoveryKindPairing) {
  EXPECT_EQ(recovery_of(EventKind::LinkDown), EventKind::LinkUp);
  EXPECT_EQ(recovery_of(EventKind::Degrade), EventKind::Restore);
  EXPECT_EQ(recovery_of(EventKind::Withdraw), EventKind::Reannounce);
  EXPECT_EQ(recovery_of(EventKind::IbgpDrop), EventKind::IbgpRestore);
  EXPECT_EQ(recovery_of(EventKind::RouterFreeze), EventKind::RouterRestart);
  EXPECT_FALSE(recovery_of(EventKind::Burst).has_value());
  EXPECT_FALSE(recovery_of(EventKind::LinkUp).has_value());
  EXPECT_TRUE(is_recovery(EventKind::Reannounce));
  EXPECT_FALSE(is_recovery(EventKind::Withdraw));
}

TEST(ChaosPlan, NormalizeSortsStably) {
  Plan p;
  p.duration = 1.0;
  Event a;
  a.t = 0.5;
  a.kind = EventKind::IbgpDrop;
  Event b;
  b.t = 0.1;
  b.kind = EventKind::LinkDown;
  Event c;
  c.t = 0.5;
  c.kind = EventKind::Burst;
  p.events = {a, b, c};
  p.normalize();
  EXPECT_EQ(p.events[0].kind, EventKind::LinkDown);
  EXPECT_EQ(p.events[1].kind, EventKind::IbgpDrop);  // stable: a before c
  EXPECT_EQ(p.events[2].kind, EventKind::Burst);
}

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, DeterministicAndWellFormed) {
  topo::GeneratorParams tp;
  tp.num_ases = 30;
  tp.num_tier1 = 3;
  tp.seed = GetParam();
  const auto g = topo::generate_topology(tp);

  GenParams gp;
  gp.seed = GetParam();
  gp.duration = 2.0;
  gp.rate = 8.0;
  gp.prefix_owners = {AsId(0), AsId(5), AsId(20)};
  const Plan p1 = generate_plan(g, gp);
  const Plan p2 = generate_plan(g, gp);
  EXPECT_EQ(format_plan(p1), format_plan(p2));

  GenParams other = gp;
  other.seed = GetParam() + 1000;
  EXPECT_NE(format_plan(p1), format_plan(generate_plan(g, other)));

  // Structural invariants: sorted, inside the duration, every failure has
  // its recovery later in the plan, link subjects are real adjacencies.
  SimTime prev = 0.0;
  for (const auto& e : p1.events) {
    EXPECT_GE(e.t, prev);
    EXPECT_GE(e.t, 0.0);
    EXPECT_LT(e.t, p1.duration);
    prev = e.t;
    if (e.kind == EventKind::LinkDown || e.kind == EventKind::Degrade) {
      EXPECT_TRUE(g.adjacent(e.a, e.b))
          << e.a.value() << " " << e.b.value();
    }
    if (e.kind == EventKind::Withdraw) {
      bool owner = false;
      for (const AsId o : gp.prefix_owners) owner = owner || o == e.a;
      EXPECT_TRUE(owner);
    }
  }
  for (std::size_t i = 0; i < p1.events.size(); ++i) {
    const auto rec = recovery_of(p1.events[i].kind);
    if (!rec.has_value()) continue;
    bool paired = false;
    for (std::size_t j = i + 1; j < p1.events.size() && !paired; ++j) {
      paired = p1.events[j].kind == *rec &&
               p1.events[j].a == p1.events[i].a &&
               p1.events[j].b == p1.events[i].b;
    }
    EXPECT_TRUE(paired) << p1.events[i].to_string();
  }

  // The generated plan survives a DSL round-trip.
  std::string error;
  const auto reparsed = parse_plan(format_plan(p1), error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->events.size(), p1.events.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 7, 11));

}  // namespace
}  // namespace mifo::chaos
