// Seeded chaos property tests (docs/CHAOS.md): for randomized churn plans
// over random topologies, a healthy MIFO deployment must preserve
//   1. safety   — every quiescent snapshot verifier-clean,
//   2. liveness — no stuck flows once faults are repaired,
//   3. conservation — every injected packet delivered or in a drop bucket,
// and the whole (topology, plan, traffic) triple must be deterministic, so
// the seed sweep can fan out across the shared ThreadPool and still match a
// serial run bit for bit — the chaos arms of bench_chaos_recovery rely on
// exactly this.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "common/thread_pool.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::chaos {
namespace {

struct RunOutcome {
  bool safe = false;
  std::size_t events_applied = 0;
  std::size_t flows_done = 0;
  std::size_t flows_total = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drop_sum = 0;
  std::uint64_t queued = 0;
  std::uint64_t ttl_drops = 0;
  std::string report_json;
};

RunOutcome run_chaos(std::uint64_t seed) {
  topo::GeneratorParams gp;
  gp.num_ases = 26;
  gp.num_tier1 = 3;
  gp.seed = seed;
  const auto g = topo::generate_topology(gp);

  testbed::EmulationBuilder builder(g, std::vector<bool>(g.num_ases(), false));
  std::vector<AsId> owners;
  for (std::size_t i = 0; i < 3; ++i) {
    owners.push_back(AsId(
        static_cast<std::uint32_t>(i * (g.num_ases() - 1) / 2)));
    builder.attach_host(owners.back());
  }
  testbed::Emulation em = builder.finalize();
  std::vector<AsId> all;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) all.push_back(AsId(i));
  em.enable_mifo(all, dp::RouterConfig{});

  Rng traffic(hash_combine(seed, 0x9e77));
  for (int i = 0; i < 6; ++i) {
    dp::FlowParams fp;
    const std::size_t a = traffic.bounded(em.hosts.size());
    std::size_t b = traffic.bounded(em.hosts.size());
    if (b == a) b = (b + 1) % em.hosts.size();
    fp.src = em.hosts[a].host;
    fp.dst = em.hosts[b].host;
    fp.size = 500 * 1000;
    fp.start = traffic.uniform(0.0, 0.3);
    em.net->start_flow(fp);
  }

  GenParams pp;
  pp.seed = seed;
  pp.duration = 0.8;
  pp.rate = 8.0;
  pp.mttr = 0.1;
  pp.prefix_owners = owners;
  const Plan plan = generate_plan(g, pp);

  EngineConfig ec;
  ec.seed = seed;
  Engine engine(em, g, ec);
  const Report report = engine.run(plan);

  // Faults are all repaired inside the plan; whatever the churn did to the
  // transports, every flow must eventually finish.
  em.net->run_to_completion(120.0);

  RunOutcome out;
  out.safe = report.safe;
  out.events_applied = report.events_applied;
  out.flows_total = em.net->flows().size();
  for (const auto& f : em.net->flows()) out.flows_done += f.done ? 1 : 0;
  out.injected = em.net->injected_pkts();
  out.delivered = em.net->delivered_pkts();
  for (const auto& [reason, count] : em.net->drop_breakdown()) {
    (void)reason;
    out.drop_sum += count;
  }
  out.queued = em.net->queued_pkts();
  out.ttl_drops = em.net->total_counters().ttl_drops;
  out.report_json = report.to_json().dump(0);
  return out;
}

class ChaosProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosProperty, ChurnPreservesSafetyLivenessConservation) {
  const RunOutcome out = run_chaos(GetParam());

  // Safety: every quiescent snapshot loop-free and lint-clean, and no
  // packet ever walked a loop long enough to burn its TTL.
  EXPECT_TRUE(out.safe);
  EXPECT_EQ(out.ttl_drops, 0u);

  // Liveness: no stuck flows after repair — and the run really drained.
  EXPECT_EQ(out.flows_done, out.flows_total);
  EXPECT_GT(out.flows_total, 0u);
  EXPECT_EQ(out.queued, 0u);

  // Conservation: injected = delivered + every drop bucket.
  EXPECT_GT(out.injected, 0u);
  EXPECT_EQ(out.injected, out.delivered + out.drop_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ChaosParallel, ThreadPoolSweepMatchesSerial) {
  const std::vector<std::uint64_t> seeds{3, 4, 5, 6};
  std::vector<RunOutcome> serial(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    serial[i] = run_chaos(seeds[i]);
  }

  // Same sweep, fanned out: emulations are independent dp::Networks, so
  // the arms may run concurrently and must reproduce the serial results
  // exactly (this is the execution model of bench_chaos_recovery).
  std::vector<RunOutcome> parallel(seeds.size());
  {
    ThreadPool pool(seeds.size());
    parallel_for(pool, 0, seeds.size(),
                 [&](std::size_t i) { parallel[i] = run_chaos(seeds[i]); });
  }

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(parallel[i].report_json, serial[i].report_json) << seeds[i];
    EXPECT_EQ(parallel[i].injected, serial[i].injected) << seeds[i];
    EXPECT_EQ(parallel[i].delivered, serial[i].delivered) << seeds[i];
    EXPECT_EQ(parallel[i].drop_sum, serial[i].drop_sum) << seeds[i];
    EXPECT_TRUE(parallel[i].safe) << seeds[i];
  }
}

}  // namespace
}  // namespace mifo::chaos
