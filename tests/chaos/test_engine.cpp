// Chaos-engine tests: scripted scenarios against a live MIFO emulation.
// Every event kind must apply, every quiescent snapshot must stay
// verifier-clean on a healthy deployment, recovery latencies must be
// accounted, a planted Eq. 3 violation must surface as a concrete
// counterexample, and the whole run must be bit-deterministic.

#include <gtest/gtest.h>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::chaos {
namespace {

struct Fixture {
  topo::AsGraph g;
  testbed::Emulation em;

  static Fixture make(std::uint64_t seed) {
    topo::GeneratorParams gp;
    gp.num_ases = 30;
    gp.num_tier1 = 4;  // guarantees the peering triangle PlantValley needs
    gp.seed = seed;
    Fixture f{topo::generate_topology(gp), {}};
    testbed::EmulationBuilder builder(f.g,
                                      std::vector<bool>(f.g.num_ases(), false));
    builder.attach_host(AsId(10));
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(f.g.num_ases() - 1)));
    f.em = builder.finalize();
    std::vector<AsId> all;
    for (std::uint32_t i = 0; i < f.g.num_ases(); ++i) {
      all.push_back(AsId(i));
    }
    f.em.enable_mifo(all, dp::RouterConfig{});
    return f;
  }

  void start_flow(Bytes size = 500 * 1000, SimTime at = 0.0) {
    dp::FlowParams fp;
    fp.src = em.hosts[0].host;
    fp.dst = em.hosts[1].host;
    fp.size = size;
    fp.start = at;
    em.net->start_flow(fp);
  }
};

Plan parse_or_die(const std::string& text) {
  std::string error;
  auto plan = parse_plan(text, error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(Plan{});
}

TEST(ChaosEngine, LinkFlapStaysSafeAndFlowsComplete) {
  Fixture f = Fixture::make(5);
  f.start_flow(2 * kMegaByte);
  const AsId a = f.em.hosts[0].as;
  const AsId b = f.g.neighbors(a).front().as;
  const Plan plan = parse_or_die(
      "duration 0.6\n"
      "fail 0.1 mttr 0.15 link " +
      std::to_string(a.value()) + " " + std::to_string(b.value()) + "\n");

  Engine engine(f.em, f.g);
  const Report report = engine.run(plan);
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.events_applied, 2u);
  EXPECT_EQ(report.violations.size(), 0u);
  EXPECT_GT(report.checks_run, 0u);
  EXPECT_EQ(report.checks_run, report.checks_clean);
  // The fail->recover pair resolved to a concrete recovery latency.
  ASSERT_EQ(report.log.size(), 2u);
  EXPECT_GE(report.log[0].recovery_latency, 0.0);

  f.em.net->run_to_completion(60.0);
  for (const auto& fl : f.em.net->flows()) EXPECT_TRUE(fl.done);
}

TEST(ChaosEngine, WithdrawReannounceRoundTripKeepsDelivery) {
  Fixture f = Fixture::make(6);
  const AsId owner = f.em.hosts[1].as;
  const Plan plan = parse_or_die(
      "duration 0.5\n"
      "fail 0.1 mttr 0.1 prefix " +
      std::to_string(owner.value()) + "\n");
  f.start_flow(kMegaByte);

  Engine engine(f.em, f.g);
  const Report report = engine.run(plan);
  EXPECT_TRUE(report.safe) << [&] {
    std::string all;
    for (const auto& v : report.violations) all += v.description + "\n";
    return all;
  }();
  EXPECT_EQ(report.events_applied, 2u);
  EXPECT_TRUE(report.log[0].applied);
  EXPECT_TRUE(report.log[1].applied);

  // Reachability is fully restored after the round trip.
  f.em.net->run_to_completion(60.0);
  EXPECT_TRUE(f.em.net->flows()[0].done);
  EXPECT_FALSE(engine.route_controller().withdrawn(owner));
}

TEST(ChaosEngine, FreezeRestartAndIbgpStalenessApply) {
  Fixture f = Fixture::make(8);
  const AsId frozen = f.em.hosts[0].as;
  const AsId stale = f.em.hosts[1].as;
  const Plan plan = parse_or_die(
      "duration 0.6\n"
      "fail 0.1 mttr 0.1 ibgp " + std::to_string(stale.value()) +
      "\n"
      "fail 0.3 mttr 0.1 router " +
      std::to_string(frozen.value()) + "\n");

  Engine engine(f.em, f.g);
  const Report report = engine.run(plan);
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.events_applied, 4u);
  for (const auto& ae : report.log) {
    EXPECT_TRUE(ae.applied) << ae.event.to_string();
    EXPECT_TRUE(ae.clean_immediate) << ae.event.to_string();
    EXPECT_TRUE(ae.clean_reconverged) << ae.event.to_string();
  }
  // Daemons are live again after the restart.
  EXPECT_FALSE(f.em.daemons[frozen.value()]->frozen());
  EXPECT_FALSE(f.em.daemons[stale.value()]->stale());
}

TEST(ChaosEngine, BurstInjectsFlows) {
  Fixture f = Fixture::make(9);
  const std::size_t before = f.em.net->flows().size();
  Plan plan;
  plan.duration = 0.4;
  Event ev;
  ev.t = 0.1;
  ev.kind = EventKind::Burst;
  ev.a = f.em.hosts[0].as;
  ev.b = f.em.hosts[1].as;
  ev.value = 0.5;  // MB per flow
  ev.count = 3;
  plan.events.push_back(ev);

  Engine engine(f.em, f.g);
  const Report report = engine.run(plan);
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.events_applied, 1u);
  EXPECT_EQ(f.em.net->flows().size(), before + 3);
  f.em.net->run_to_completion(60.0);
  for (const auto& fl : f.em.net->flows()) EXPECT_TRUE(fl.done);
}

TEST(ChaosEngine, PlantedValleyYieldsConcreteCounterexample) {
  Fixture f = Fixture::make(12);
  Plan plan;
  plan.duration = 0.3;
  Event ev;
  ev.t = 0.1;
  ev.kind = EventKind::PlantValley;
  plan.events.push_back(ev);

  Engine engine(f.em, f.g);
  const Report report = engine.run(plan);
  ASSERT_EQ(report.log.size(), 1u);
  ASSERT_TRUE(report.log[0].applied) << report.log[0].detail;
  EXPECT_FALSE(report.safe);
  EXPECT_LT(report.checks_clean, report.checks_run);
  ASSERT_FALSE(report.violations.empty());
  bool has_cycle = false;
  for (const auto& v : report.violations) {
    has_cycle = has_cycle || v.description.find("cycle") != std::string::npos;
    EXPECT_EQ(v.event_index, 0u);  // attributed to the planting event
  }
  EXPECT_TRUE(has_cycle) << "expected a concrete counterexample cycle";
}

TEST(ChaosEngine, ReportJsonIsDeterministic) {
  const auto run_once = [] {
    Fixture f = Fixture::make(21);
    f.start_flow(kMegaByte);
    GenParams gp;
    gp.seed = 21;
    gp.duration = 0.8;
    gp.rate = 6.0;
    gp.prefix_owners = {f.em.hosts[0].as, f.em.hosts[1].as};
    const Plan plan = generate_plan(f.g, gp);
    Engine engine(f.em, f.g);
    return engine.run(plan).to_json().dump(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mifo::chaos
