// Integration tests of the chaos engine's incremental verification modes:
// Incremental snapshots must agree with Full ones on the same plan, and
// Differential mode — which runs both and cross-checks every snapshot —
// must report zero mismatches on healthy and on deliberately-broken runs
// alike (a planted violation must be caught by BOTH provers, not surface
// as a divergence).

#include <gtest/gtest.h>

#include <string>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::chaos {
namespace {

struct Fixture {
  topo::AsGraph g;
  testbed::Emulation em;

  static Fixture make(std::uint64_t seed) {
    topo::GeneratorParams gp;
    gp.num_ases = 30;
    gp.num_tier1 = 4;  // guarantees the peering triangle PlantValley needs
    gp.seed = seed;
    Fixture f{topo::generate_topology(gp), {}};
    testbed::EmulationBuilder builder(f.g,
                                      std::vector<bool>(f.g.num_ases(), false));
    builder.attach_host(AsId(10));
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(f.g.num_ases() - 1)));
    f.em = builder.finalize();
    std::vector<AsId> all;
    for (std::uint32_t i = 0; i < f.g.num_ases(); ++i) {
      all.push_back(AsId(i));
    }
    f.em.enable_mifo(all, dp::RouterConfig{});
    return f;
  }
};

Plan parse_or_die(const std::string& text) {
  std::string error;
  auto plan = parse_plan(text, error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(Plan{});
}

std::string churn_plan(const Fixture& f) {
  const AsId a = f.em.hosts[0].as;
  const AsId b = f.g.neighbors(a).front().as;
  const AsId owner = f.em.hosts[1].as;
  return "duration 0.8\n"
         "fail 0.1 mttr 0.15 link " +
         std::to_string(a.value()) + " " + std::to_string(b.value()) +
         "\n"
         "fail 0.2 mttr 0.2 prefix " +
         std::to_string(owner.value()) +
         "\n"
         "fail 0.45 mttr 0.1 router " +
         std::to_string(a.value()) + "\n";
}

TEST(ChaosDifferential, HealthyChurnHasZeroMismatches) {
  Fixture f = Fixture::make(9);
  const Plan plan = parse_or_die(churn_plan(f));

  EngineConfig ec;
  ec.verify_mode = VerifyMode::Differential;
  Engine engine(f.em, f.g, ec);
  const Report report = engine.run(plan);

  EXPECT_EQ(report.verify_mode, VerifyMode::Differential);
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.differential_mismatches, 0u);
  EXPECT_EQ(report.events_applied, 6u);
  EXPECT_GT(report.checks_run, 0u);
  EXPECT_EQ(report.checks_run, report.checks_clean);
  // The proof cache earned its keep: most snapshots re-prove a strict
  // subset of destinations.
  EXPECT_GT(report.total_cache_hits, 0u);
  // The delta routing table mirrored the link and prefix churn (4 of the
  // 6 applied events have a routing-plane effect) and every snapshot's
  // from-scratch route rebuild agreed with the delta-maintained segments.
  EXPECT_EQ(report.route_events, 4u);
  EXPECT_EQ(report.route_differential_mismatches, 0u);
  EXPECT_GT(report.total_route_recomputed, 0u);
  std::size_t span_recomputed = 0;
  for (const auto& sp : report.spans) span_recomputed += sp.route_recomputed;
  EXPECT_EQ(span_recomputed, report.total_route_recomputed);
}

TEST(ChaosDifferential, IncrementalModeAgreesWithFullOnTheSamePlan) {
  const std::string text = churn_plan(Fixture::make(11));

  auto run_mode = [&](VerifyMode mode) {
    Fixture f = Fixture::make(11);  // fresh deployment per mode
    EngineConfig ec;
    ec.verify_mode = mode;
    Engine engine(f.em, f.g, ec);
    return engine.run(parse_or_die(text));
  };

  const Report full = run_mode(VerifyMode::Full);
  const Report inc = run_mode(VerifyMode::Incremental);
  EXPECT_EQ(full.safe, inc.safe);
  EXPECT_EQ(full.checks_run, inc.checks_run);
  EXPECT_EQ(full.checks_clean, inc.checks_clean);
  EXPECT_EQ(full.violations.size(), inc.violations.size());
  // Full mode re-proves everything at every snapshot (its cumulative
  // incremental accounting stays zero); incremental must not — that is
  // the whole point of the dirty-set machinery. The per-span cost rows
  // are filled in both modes, so they give the fair comparison.
  EXPECT_EQ(full.total_cache_hits, 0u);
  EXPECT_EQ(full.total_dirty_destinations, 0u);
  EXPECT_GT(inc.total_cache_hits, 0u);
  std::size_t full_reproved = 0;
  std::size_t inc_reproved = 0;
  for (const auto& sp : full.spans) full_reproved += sp.dirty_destinations;
  for (const auto& sp : inc.spans) inc_reproved += sp.dirty_destinations;
  EXPECT_LT(inc_reproved, full_reproved);

  // Per-span cost accounting reached the report.
  bool any_cached = false;
  for (const auto& sp : inc.spans) any_cached |= sp.cache_hits > 0;
  EXPECT_TRUE(any_cached);
}

TEST(ChaosDifferential, PlantedValleyIsCaughtWithoutDivergence) {
  Fixture f = Fixture::make(9);
  const Plan plan = parse_or_die(
      "duration 0.5\n"
      "at 0.1 plant-valley\n");

  EngineConfig ec;
  ec.verify_mode = VerifyMode::Differential;
  Engine engine(f.em, f.g, ec);
  const Report report = engine.run(plan);

  // Both provers must flag the planted ring — any disagreement would show
  // up as a differential mismatch on top of the violation.
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.differential_mismatches, 0u);
  EXPECT_GT(report.violations.size(), 0u);
}

TEST(ChaosDifferential, PlantedStaleRouteIsCaughtByRouteOracle) {
  Fixture f = Fixture::make(9);
  const Plan plan = parse_or_die(
      "duration 0.5\n"
      "at 0.1 plant-stale-route\n");

  EngineConfig ec;
  ec.verify_mode = VerifyMode::Differential;
  Engine engine(f.em, f.g, ec);
  const Report report = engine.run(plan);

  // The data plane reconverged honestly (the withdraw really happened), so
  // the loop/valley/lint provers and the incremental-vs-full cross-check
  // stay clean: ONLY the route differential oracle can catch the stale
  // segment. Exactly that counter must fire.
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.differential_mismatches, 0u);
  EXPECT_GT(report.route_differential_mismatches, 0u);
  bool route_violation = false;
  for (const auto& v : report.violations) {
    route_violation |= v.description.find("route-differential") == 0;
  }
  EXPECT_TRUE(route_violation);
}

TEST(ChaosDifferential, PlantStaleRouteRefusedOutsideDifferentialMode) {
  Fixture f = Fixture::make(9);
  const Plan plan = parse_or_die(
      "duration 0.4\n"
      "at 0.1 plant-stale-route\n");

  EngineConfig ec;
  ec.verify_mode = VerifyMode::Incremental;
  Engine engine(f.em, f.g, ec);
  const Report report = engine.run(plan);

  // No mode can catch the mutation without the route oracle, so the event
  // must refuse to apply rather than leave an undetectable stale segment.
  EXPECT_TRUE(report.safe);
  ASSERT_EQ(report.log.size(), 1u);
  EXPECT_FALSE(report.log[0].applied);
}

}  // namespace
}  // namespace mifo::chaos
