// Quiescent-point detection on the sharded plane: the chaos engine's
// safety-under-churn argument needs points where the verify:: prover can run
// against a consistent, drained forwarding state. These tests pin down when
// such points exist, that the gathered snapshot equals the serial oracle's
// state, and that the prover reaches the same verdict on both.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/quiesce.hpp"
#include "testbed/fig11.hpp"
#include "testbed/sharded_emulation.hpp"
#include "verify/deflection_graph.hpp"

namespace mifo::chaos {
namespace {

using testbed::EmulationBuilder;
using testbed::Fig11Ids;
using testbed::ShardedEmulationBuilder;

struct Fixture {
  Fig11Ids ids;
  topo::AsGraph g = testbed::fig11_graph();
  std::vector<bool> expand;

  Fixture() : expand(g.num_ases(), false) {
    expand[ids.as3.value()] = true;
    expand[ids.as4.value()] = true;
    expand[ids.as6.value()] = true;
  }

  template <typename BuilderT>
  void attach_hosts(BuilderT& b) const {
    b.attach_host(ids.as1);
    b.attach_host(ids.as2);
    b.attach_host(ids.as5);
    b.attach_host(ids.as5);
  }
};

TEST(ShardedQuiescence, UntouchedPlaneIsQuiescentAndSnapshotMatchesSerial) {
  const Fixture fx;

  ShardedEmulationBuilder sb(fx.g, fx.expand);
  fx.attach_hosts(sb);
  testbed::ShardedEmulation em = sb.finalize(4);
  em.enable_mifo({fx.ids.as3}, dp::RouterConfig{}, 0.0050003);

  // No packet ever injected: the very first barrier is a quiescent point.
  EXPECT_TRUE(is_quiescent(*em.net));
  const QuiescentPoint qp = await_quiescence(*em.net, /*deadline=*/1.0);
  ASSERT_TRUE(qp.reached);
  EXPECT_EQ(qp.t, 0.0);
  ASSERT_EQ(qp.routers.size(), em.net->num_routers());

  // The snapshot is bit-identical wiring: the prover must explore the exact
  // same deflection graph as on the serially-built network.
  EmulationBuilder ob(fx.g, fx.expand);
  fx.attach_hosts(ob);
  testbed::Emulation oracle = ob.finalize();
  oracle.enable_mifo({fx.ids.as3}, dp::RouterConfig{}, 0.0050003);

  const verify::LoopCheck sharded = verify::check_loop_freedom(qp.routers);
  const verify::LoopCheck serial = verify::check_loop_freedom(*oracle.net);
  EXPECT_TRUE(sharded.loop_free);
  EXPECT_TRUE(serial.loop_free);
  EXPECT_EQ(sharded.stats.destinations, serial.stats.destinations);
  EXPECT_EQ(sharded.stats.states, serial.stats.states);
  EXPECT_EQ(sharded.stats.edges, serial.stats.edges);
}

TEST(ShardedQuiescence, DetectsDrainUnderTrafficAndProvesLoopFreedom) {
  const Fixture fx;
  ShardedEmulationBuilder sb(fx.g, fx.expand);
  fx.attach_hosts(sb);
  testbed::ShardedEmulation em = sb.finalize(2);
  em.enable_mifo({fx.ids.as3}, dp::RouterConfig{}, 0.0050003);

  for (std::size_t pair = 0; pair < 2; ++pair) {
    dp::FlowParams fp;
    fp.src = em.hosts[pair].host;
    fp.dst = em.hosts[2 + pair].host;
    fp.size = 500 * 1000;
    fp.start = 1e-3 * static_cast<SimTime>(pair);
    em.net->start_flow(fp);
  }

  // Mid-flight the books cannot close...
  em.net->run_until(0.002);
  EXPECT_FALSE(is_quiescent(*em.net));
  const QuiescentPoint early = await_quiescence(*em.net, /*deadline=*/0.004);
  EXPECT_FALSE(early.reached);
  EXPECT_TRUE(early.routers.empty());

  // ...but once traffic drains, detection fires even though the MIFO daemon
  // periodics never stop rescheduling themselves.
  const QuiescentPoint qp = await_quiescence(*em.net, /*deadline=*/30.0);
  ASSERT_TRUE(qp.reached);
  EXPECT_GT(qp.t, 0.004);
  ASSERT_EQ(qp.routers.size(), em.net->num_routers());
  EXPECT_TRUE(is_quiescent(*em.net));

  // The quiescent snapshot carries whatever alternates the daemon installed
  // while the bottleneck was congested; the paper's theorem says that state
  // is still loop-free, and the prover confirms it.
  const verify::LoopCheck check = verify::check_loop_freedom(qp.routers);
  EXPECT_TRUE(check.loop_free) << (check.cycles.empty()
                                       ? std::string("no cycle?")
                                       : check.cycles.front().to_string());
  EXPECT_GT(check.stats.destinations, 0u);
}

}  // namespace
}  // namespace mifo::chaos
