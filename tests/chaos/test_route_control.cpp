// RouteController tests — BGP withdrawal/re-announcement propagated into a
// live emulation: withdrawing an origin must empty the remote speakers'
// RIBs and tear both the default route and any daemon-programmed alt_port
// out of every remote FIB; re-announcing must restore end-to-end
// reachability. The alt-missing-from-rib lint is the tripwire: if eviction
// ever skips the alt, the lint must fire.

#include <gtest/gtest.h>

#include "chaos/route_control.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"
#include "verify/lint.hpp"

namespace mifo::chaos {
namespace {

struct Fixture {
  topo::AsGraph g;
  testbed::Emulation em;

  static Fixture make(std::uint64_t seed, bool mifo) {
    topo::GeneratorParams gp;
    gp.num_ases = 24;
    gp.num_tier1 = 3;
    gp.seed = seed;
    Fixture f{topo::generate_topology(gp), {}};
    testbed::EmulationBuilder builder(f.g,
                                      std::vector<bool>(f.g.num_ases(), false));
    builder.attach_host(AsId(2));
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(f.g.num_ases() - 1)));
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(f.g.num_ases() / 2)));
    f.em = builder.finalize();
    if (mifo) {
      std::vector<AsId> all;
      for (std::uint32_t i = 0; i < f.g.num_ases(); ++i) {
        all.push_back(AsId(i));
      }
      f.em.enable_mifo(all, dp::RouterConfig{});
    }
    return f;
  }

  [[nodiscard]] std::size_t routers_with_route(dp::Addr dst) const {
    std::size_t n = 0;
    for (std::uint32_t r = 0; r < em.net->num_routers(); ++r) {
      n += em.net->router(RouterId(r)).fib().lookup(dst).has_value() ? 1 : 0;
    }
    return n;
  }
};

TEST(RouteControl, WithdrawEvictsRibAndFib) {
  auto f = Fixture::make(7, /*mifo=*/false);
  RouteController ctl(f.em, f.g);
  const auto& victim = f.em.hosts[0];

  // Converged baseline: every router routes the prefix, every remote
  // speaker holds a best path to the origin.
  EXPECT_EQ(f.routers_with_route(victim.addr), f.em.net->num_routers());
  for (std::uint32_t as = 0; as < f.g.num_ases(); ++as) {
    EXPECT_TRUE(ctl.sessions().speaker(AsId(as)).best(victim.as).valid())
        << "AS" << as;
  }

  ASSERT_TRUE(ctl.withdraw(victim.as));
  EXPECT_TRUE(ctl.withdrawn(victim.as));

  // Every RIB emptied (the origin dropped its Self route with the
  // withdrawal); only the origin router keeps local host delivery. The
  // other prefixes are untouched.
  for (std::uint32_t as = 0; as < f.g.num_ases(); ++as) {
    EXPECT_FALSE(ctl.sessions().speaker(AsId(as)).best(victim.as).valid())
        << "AS" << as;
  }
  EXPECT_EQ(f.routers_with_route(victim.addr), 1u);
  EXPECT_EQ(f.routers_with_route(f.em.hosts[1].addr),
            f.em.net->num_routers());

  // Idempotence / non-owners.
  EXPECT_FALSE(ctl.withdraw(victim.as));
  AsId non_owner = AsId::invalid();
  for (std::uint32_t as = 0; as < f.g.num_ases() && !non_owner.valid();
       ++as) {
    bool owns = false;
    for (const auto& att : f.em.hosts) owns = owns || att.as == AsId(as);
    if (!owns) non_owner = AsId(as);
  }
  ASSERT_TRUE(non_owner.valid());
  EXPECT_FALSE(ctl.withdraw(non_owner));
}

TEST(RouteControl, ReannounceRestoresReachability) {
  auto f = Fixture::make(9, /*mifo=*/false);
  RouteController ctl(f.em, f.g);
  const auto& victim = f.em.hosts[0];

  ASSERT_TRUE(ctl.withdraw(victim.as));
  EXPECT_FALSE(ctl.reannounce(f.em.hosts[1].as));  // not withdrawn
  ASSERT_TRUE(ctl.reannounce(victim.as));
  EXPECT_FALSE(ctl.withdrawn(victim.as));
  EXPECT_EQ(f.routers_with_route(victim.addr), f.em.net->num_routers());

  // End-to-end proof: a flow towards the restored prefix completes.
  dp::FlowParams fp;
  fp.src = f.em.hosts[1].host;
  fp.dst = victim.host;
  fp.size = 200 * 1000;
  f.em.net->start_flow(fp);
  f.em.net->run_to_completion(30.0);
  EXPECT_TRUE(f.em.net->flows()[0].done);
  EXPECT_GT(ctl.messages_processed(), 0u);
}

TEST(RouteControl, WithdrawEvictsDaemonProgrammedAlt) {
  auto f = Fixture::make(11, /*mifo=*/true);
  dp::Network& net = *f.em.net;
  // Let every daemon tick once so alts are programmed where RIBs allow.
  net.run_until(0.03);
  RouteController ctl(f.em, f.g);
  const auto& victim = f.em.hosts[0];

  ASSERT_TRUE(ctl.withdraw(victim.as));

  // No remote FIB may retain a default or alt for the withdrawn prefix
  // (the alt rides on the entry; Fib::remove drops both).
  for (std::uint32_t r = 0; r < net.num_routers(); ++r) {
    if (net.router(RouterId(r)).as() == victim.as) continue;
    EXPECT_FALSE(net.router(RouterId(r)).fib().lookup(victim.addr))
        << "router " << r;
  }

  // And the lint pass agrees: nothing dangles.
  std::vector<std::pair<dp::Addr, AsId>> owners;
  for (const auto& att : f.em.hosts) owners.emplace_back(att.addr, att.as);
  const auto issues =
      verify::lint_deployment(net, f.g, f.em.daemons, owners);
  for (const auto& iss : issues) {
    EXPECT_NE(iss.kind, verify::LintKind::AltMissingFromRib)
        << iss.to_string();
  }

  ASSERT_TRUE(ctl.reannounce(victim.as));
  EXPECT_EQ(f.routers_with_route(victim.addr), net.num_routers());
}

TEST(RouteControl, SkippedAltEvictionTripsTheLint) {
  // Negative control for the tripwire: reinstall a default+alt for a
  // withdrawn prefix behind the controller's back — the daemon no longer
  // knows the prefix, so alt-missing-from-rib MUST fire.
  auto f = Fixture::make(13, /*mifo=*/true);
  dp::Network& net = *f.em.net;
  net.run_until(0.03);
  RouteController ctl(f.em, f.g);
  const auto& victim = f.em.hosts[0];
  ASSERT_TRUE(ctl.withdraw(victim.as));

  // Find a router outside the origin AS with >= 2 eBGP ports and fake the
  // "forgot to evict" state.
  bool planted = false;
  for (std::uint32_t r = 0; r < net.num_routers() && !planted; ++r) {
    dp::Router& router = net.router(RouterId(r));
    if (router.as() == victim.as) continue;
    PortId def = PortId::invalid();
    PortId alt = PortId::invalid();
    for (std::uint32_t p = 0; p < router.num_ports(); ++p) {
      if (router.port(PortId(p)).kind != dp::PortKind::Ebgp) continue;
      if (!def.valid()) {
        def = PortId(p);
      } else if (!alt.valid() && router.port(PortId(p)).neighbor_as !=
                                     router.port(def).neighbor_as) {
        alt = PortId(p);
      }
    }
    if (!def.valid() || !alt.valid()) continue;
    router.fib().set_route(victim.addr, def);
    router.fib().set_alt(victim.addr, alt);
    planted = true;
  }
  ASSERT_TRUE(planted);

  std::vector<std::pair<dp::Addr, AsId>> owners;
  for (const auto& att : f.em.hosts) owners.emplace_back(att.addr, att.as);
  const auto issues =
      verify::lint_deployment(net, f.g, f.em.daemons, owners);
  bool fired = false;
  for (const auto& iss : issues) {
    fired = fired || iss.kind == verify::LintKind::AltMissingFromRib;
  }
  EXPECT_TRUE(fired) << "lint failed to catch a stale alt after withdrawal";
}

TEST(RouteControl, DeltaMirrorTracksWithdrawalsAndSessions) {
  auto f = Fixture::make(17, /*mifo=*/true);
  f.em.net->run_until(0.03);
  RouteController ctl(f.em, f.g);
  const auto& victim = f.em.hosts[0];

  // The mirror starts converged: every host prefix tracked, no mismatches.
  EXPECT_TRUE(ctl.delta().tracks(victim.as));
  EXPECT_TRUE(ctl.delta().differential_check().empty());
  EXPECT_EQ(ctl.delta_events(), 0u);

  // Withdraw: exactly one destination recomputed, the mirror agrees with
  // a from-scratch rebuild, and the published segment is empty.
  ASSERT_TRUE(ctl.withdraw(victim.as));
  EXPECT_EQ(ctl.delta_events(), 1u);
  EXPECT_TRUE(ctl.last_delta_stats().applied);
  EXPECT_EQ(ctl.last_delta_stats().recomputed, 1u);
  EXPECT_TRUE(ctl.delta().withdrawn(victim.as));
  EXPECT_EQ(ctl.delta().segment(victim.as)->store.num_reachable(), 0u);
  EXPECT_TRUE(ctl.delta().differential_check().empty());

  ASSERT_TRUE(ctl.reannounce(victim.as));
  EXPECT_EQ(ctl.delta_events(), 2u);
  EXPECT_FALSE(ctl.delta().withdrawn(victim.as));
  EXPECT_GT(ctl.delta().segment(victim.as)->store.num_reachable(), 0u);

  // Session flap: the mirror masks the edge, stays oracle-identical, and
  // the recomputed set is a strict subset of the tracked universe unless
  // every tracked destination actually held a row across the edge.
  const AsId a = victim.as;
  const AsId b = f.g.neighbors(a).front().as;
  ASSERT_TRUE(ctl.session_down(a, b));
  EXPECT_EQ(ctl.delta_events(), 3u);
  EXPECT_TRUE(ctl.delta().session_disabled(a, b));
  EXPECT_TRUE(ctl.delta().differential_check().empty());
  const auto& st = ctl.last_delta_stats();
  EXPECT_EQ(st.recomputed + st.patched + st.unchanged, st.destinations);
  EXPECT_EQ(ctl.delta_recomputed(),
            1u + 1u + ctl.last_delta_stats().recomputed);
  EXPECT_EQ(ctl.delta_patched(), ctl.last_delta_stats().patched);

  ASSERT_TRUE(ctl.session_up(a, b));
  EXPECT_FALSE(ctl.delta().session_disabled(a, b));
  EXPECT_TRUE(ctl.delta().differential_check().empty());

  // Duplicate session events are no-ops at the controller level too.
  ASSERT_TRUE(ctl.session_down(a, b));
  EXPECT_FALSE(ctl.session_down(b, a));
  ASSERT_TRUE(ctl.session_up(b, a));
}

}  // namespace
}  // namespace mifo::chaos
