#include "bgp/routing.hpp"

#include <gtest/gtest.h>

#include "topo/relationship.hpp"

namespace mifo::bgp {
namespace {

using topo::AsGraph;
using topo::Rel;

TEST(Route, DecisionProcessOrder) {
  const Route customer{RouteClass::Customer, 5, AsId(9)};
  const Route peer{RouteClass::Peer, 1, AsId(1)};
  const Route provider{RouteClass::Provider, 1, AsId(1)};
  EXPECT_TRUE(customer.better_than(peer));     // class beats length
  EXPECT_TRUE(peer.better_than(provider));
  const Route shorter{RouteClass::Peer, 2, AsId(5)};
  const Route longer{RouteClass::Peer, 3, AsId(1)};
  EXPECT_TRUE(shorter.better_than(longer));    // length within class
  const Route low_id{RouteClass::Peer, 2, AsId(2)};
  EXPECT_TRUE(low_id.better_than(shorter));    // next-hop id tie-break
  EXPECT_FALSE(Route{}.better_than(peer));
  EXPECT_TRUE(peer.better_than(Route{}));
}

TEST(Route, ExportRules) {
  // To customers: everything.
  for (RouteClass c : {RouteClass::Customer, RouteClass::Peer,
                       RouteClass::Provider, RouteClass::Self}) {
    EXPECT_TRUE(may_export(c, Rel::Customer));
  }
  // To peers/providers: only customer routes and own prefixes.
  for (Rel to : {Rel::Peer, Rel::Provider}) {
    EXPECT_TRUE(may_export(RouteClass::Customer, to));
    EXPECT_TRUE(may_export(RouteClass::Self, to));
    EXPECT_FALSE(may_export(RouteClass::Peer, to));
    EXPECT_FALSE(may_export(RouteClass::Provider, to));
  }
  EXPECT_FALSE(may_export(RouteClass::None, Rel::Customer));
}

// Fig. 2(a): three mutual peers above a shared customer.
AsGraph fig2a() {
  AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));
  return g;
}

TEST(ComputeRoutes, Fig2aDefaultsAreDirect) {
  const AsGraph g = fig2a();
  const auto routes = compute_routes(g, AsId(0));
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const Route& r = routes.best(AsId(i));
    EXPECT_EQ(r.cls, RouteClass::Customer);
    EXPECT_EQ(r.path_len, 1);
    EXPECT_EQ(r.next_hop, AsId(0));
  }
  EXPECT_EQ(routes.best(AsId(0)).cls, RouteClass::Self);
}

TEST(ComputeRoutes, Fig2aRibHoldsPeerAlternatives) {
  const AsGraph g = fig2a();
  const auto routes = compute_routes(g, AsId(0));
  // Each peer exports its customer route, so AS1's RIB has 3 entries.
  const auto rib = rib_of(g, routes, AsId(1));
  ASSERT_EQ(rib.size(), 3u);
  EXPECT_EQ(rib[0].cls, RouteClass::Customer);  // best first
  EXPECT_EQ(rib[1].cls, RouteClass::Peer);
  EXPECT_EQ(rib[2].cls, RouteClass::Peer);
}

TEST(ComputeRoutes, ProviderChainReachesEveryone) {
  // 0 provides 1 provides 2; dest = 2. AS0 reaches it through the chain.
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(2));
  const auto routes = compute_routes(g, AsId(2));
  EXPECT_EQ(routes.best(AsId(1)).cls, RouteClass::Customer);
  EXPECT_EQ(routes.best(AsId(0)).cls, RouteClass::Customer);
  EXPECT_EQ(routes.best(AsId(0)).path_len, 2);
  // And dest reaches others through provider routes.
  const auto up = compute_routes(g, AsId(0));
  EXPECT_EQ(up.best(AsId(2)).cls, RouteClass::Provider);
  EXPECT_EQ(up.best(AsId(2)).path_len, 2);
}

TEST(ComputeRoutes, PeerRouteNotTransitedUphill) {
  // 2 -- peer -- 1, 1 provides 0; dest = 2.
  // AS0 learns the peer route from its provider 1 (providers export
  // everything to customers): 0 -> 1 -> 2.
  // But a *provider* of 1 would not: peers' routes don't go uphill.
  AsGraph g(4);
  g.add_peering(AsId(1), AsId(2));
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(3), AsId(1));  // 3 is 1's provider
  const auto routes = compute_routes(g, AsId(2));
  EXPECT_EQ(routes.best(AsId(0)).cls, RouteClass::Provider);
  EXPECT_EQ(routes.best(AsId(0)).next_hop, AsId(1));
  // AS3 has no route: its only neighbor 1 holds a peer route, which is not
  // exported to providers.
  EXPECT_FALSE(routes.best(AsId(3)).valid());
}

TEST(ComputeRoutes, CustomerPreferredOverShorterPeer) {
  // Dest 3. AS0 has a 1-hop peer route via 3 and a 2-hop customer route via
  // 1 -> 3: customer must win despite being longer.
  AsGraph g(4);
  g.add_peering(AsId(0), AsId(3));
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(3));
  const auto routes = compute_routes(g, AsId(3));
  EXPECT_EQ(routes.best(AsId(0)).cls, RouteClass::Customer);
  EXPECT_EQ(routes.best(AsId(0)).path_len, 2);
  EXPECT_EQ(routes.best(AsId(0)).next_hop, AsId(1));
}

TEST(ComputeRoutes, TieBreakLowestNextHop) {
  // Two equal-length customer paths to dest 3 via 1 and 2.
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(0), AsId(2));
  g.add_provider_customer(AsId(1), AsId(3));
  g.add_provider_customer(AsId(2), AsId(3));
  const auto routes = compute_routes(g, AsId(3));
  EXPECT_EQ(routes.best(AsId(0)).next_hop, AsId(1));
}

TEST(ComputeRoutes, UnreachableWhenDisconnected) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  const auto routes = compute_routes(g, AsId(2));
  EXPECT_FALSE(routes.best(AsId(0)).valid());
  EXPECT_FALSE(routes.best(AsId(1)).valid());
  EXPECT_EQ(reachable_count(routes), 1u);  // the dest itself
}

TEST(AsPath, FollowsNextHopsToDest) {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(2));
  const auto routes = compute_routes(g, AsId(2));
  const auto path = as_path(g, routes, AsId(0));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), AsId(0));
  EXPECT_EQ(path.back(), AsId(2));
  EXPECT_TRUE(as_path(g, routes, AsId(2)).size() == 1);
}

TEST(AsPath, EmptyWhenUnreachable) {
  AsGraph g(2);
  const auto routes = compute_routes(g, AsId(1));
  EXPECT_TRUE(as_path(g, routes, AsId(0)).empty());
}

TEST(RibRouteFrom, ExportGatekeeping) {
  const AsGraph g = fig2a();
  const auto routes = compute_routes(g, AsId(0));
  // AS1's peer AS2 has a customer route -> exported.
  const auto from_peer = rib_route_from(g, routes, AsId(1), AsId(2));
  ASSERT_TRUE(from_peer.has_value());
  EXPECT_EQ(from_peer->cls, RouteClass::Peer);
  EXPECT_EQ(from_peer->path_len, 2);
  // AS1's view of AS0 (the destination itself): a direct customer route.
  const auto from_dest = rib_route_from(g, routes, AsId(1), AsId(0));
  ASSERT_TRUE(from_dest.has_value());
  EXPECT_EQ(from_dest->cls, RouteClass::Customer);
  EXPECT_EQ(from_dest->path_len, 1);
  // BGP loop detection: AS1's announced path for dest 0 is {1,0} — AS0
  // must never import a route to its own prefix through AS1.
  EXPECT_FALSE(rib_route_from(g, routes, AsId(0), AsId(1)).has_value());
}

TEST(RibOf, DestHasEmptyRib) {
  const AsGraph g = fig2a();
  const auto routes = compute_routes(g, AsId(0));
  EXPECT_TRUE(rib_of(g, routes, AsId(0)).empty());
}

}  // namespace
}  // namespace mifo::bgp
