// Seeded churn differential harness for the delta routing table
// (DESIGN.md §5.1b, the routing-plane sibling of test_route_store_diff).
//
// Each seed is one topology (sizes cycling 20..120 ASes) plus one seeded
// random event sequence of prefix withdrawals/re-announcements and session
// flaps. The test maintains its OWN independent model of the churn state —
// a withdrawn-origin set and a disabled-adjacency set — and after EVERY
// event rebuilds each tracked destination from scratch on an independently
// masked copy of the base graph, then asserts the delta table's published
// segment is element-identical across every reader-visible view: best
// routes, full RIB rows, AS paths, reachability counts, and per-neighbor
// `rib_from` probes over every base-graph adjacency (the probes cross the
// flapped edges through potentially stale segment graphs — exactly the
// reader pattern the stale-graph-safety argument covers).
//
// The per-event stats are cross-checked too: recomputed + patched +
// unchanged must partition the tracked universe, duplicate events must be
// no-ops, and
// destinations the delta engine claims it kept must be pointer-identical
// to their pre-event segments (no silent rebuilds, no silent skips).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bgp/delta.hpp"
#include "bgp/route_store.hpp"
#include "bgp/routing.hpp"
#include "common/rng.hpp"
#include "topo/generator.hpp"
#include "topo/relationship.hpp"

namespace mifo {
namespace {

using bgp::DeltaRoutingTable;
using bgp::DeltaStats;
using bgp::Route;
using bgp::RouteEvent;
using bgp::RouteStore;

// ---------------------------------------------------------------------------
// The independent churn model: the test's own masked-graph constructor,
// deliberately sharing no code with DeltaRoutingTable::build_masked.
// ---------------------------------------------------------------------------

std::uint64_t edge_key(AsId a, AsId b) {
  const std::uint32_t lo = std::min(a.value(), b.value());
  const std::uint32_t hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

topo::AsGraph mask_graph_checked(const topo::AsGraph& base,
                                 const std::set<std::uint64_t>& disabled) {
  topo::AsGraph g(base.num_ases());
  for (std::uint32_t i = 0; i < base.num_ases(); ++i) {
    const AsId a(i);
    for (const auto& nb : base.neighbors(a)) {
      if (!(a < nb.as)) continue;
      if (disabled.contains(edge_key(a, nb.as))) continue;
      bool added = false;
      switch (nb.rel) {
        case topo::Rel::Customer:
          added = g.add_provider_customer(a, nb.as);
          break;
        case topo::Rel::Provider:
          added = g.add_provider_customer(nb.as, a);
          break;
        case topo::Rel::Peer:
          added = g.add_peering(a, nb.as);
          break;
      }
      EXPECT_TRUE(added);
    }
  }
  return g;
}

RouteStore expected_store(const topo::AsGraph& masked, AsId dest,
                          bool withdrawn) {
  if (withdrawn) {
    return RouteStore(
        masked,
        bgp::DestRoutes(dest, std::vector<Route>(masked.num_ases())));
  }
  return RouteStore(masked, dest);
}

// ---------------------------------------------------------------------------
// The seeded sweep.
// ---------------------------------------------------------------------------

class RouteDeltaDiff : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static topo::AsGraph make(std::uint64_t seed) {
    topo::GeneratorParams p;
    p.num_ases = 20 + (seed % 5) * 25;  // 20, 45, 70, 95, 120
    p.seed = seed;
    return topo::generate_topology(p);
  }

  static std::vector<AsId> dests(const topo::AsGraph& g, std::uint64_t seed) {
    std::vector<AsId> d;
    const std::uint32_t n = static_cast<std::uint32_t>(g.num_ases());
    const std::uint32_t stride = n <= 45 ? 1 : 7;
    for (std::uint32_t i = static_cast<std::uint32_t>(seed % stride); i < n;
         i += stride) {
      d.emplace_back(i);
    }
    return d;
  }

  static std::vector<std::pair<AsId, AsId>> adjacencies(
      const topo::AsGraph& g) {
    std::vector<std::pair<AsId, AsId>> edges;
    for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
      const AsId a(i);
      for (const auto& nb : g.neighbors(a)) {
        if (a < nb.as) edges.emplace_back(a, nb.as);
      }
    }
    return edges;
  }
};

TEST_P(RouteDeltaDiff, EverySegmentMatchesScratchRebuildAfterEveryEvent) {
  const std::uint64_t seed = GetParam();
  const topo::AsGraph base = make(seed);
  const std::vector<AsId> tracked = dests(base, seed);
  const std::vector<std::pair<AsId, AsId>> edges = adjacencies(base);
  ASSERT_FALSE(edges.empty());

  DeltaRoutingTable table(base, tracked);

  // The test's independent churn state.
  std::set<AsId> withdrawn;
  std::set<std::uint64_t> disabled;
  std::vector<std::pair<AsId, AsId>> disabled_edges;

  Rng rng(seed * 7919 + 17);
  const std::size_t num_events = 16;

  const auto check_all_views = [&](const char* ctx) {
    const topo::AsGraph masked = mask_graph_checked(base, disabled);
    for (const AsId dest : tracked) {
      const auto seg = table.segment(dest);
      ASSERT_NE(seg, nullptr) << ctx;
      const RouteStore want =
          expected_store(masked, dest, withdrawn.contains(dest));
      const RouteStore& got = seg->store;

      ASSERT_EQ(got.dest(), dest) << ctx;
      ASSERT_EQ(got.num_ases(), want.num_ases()) << ctx;
      ASSERT_EQ(got.num_reachable(), want.num_reachable())
          << ctx << " dest " << dest.value();
      for (std::uint32_t i = 0; i < base.num_ases(); ++i) {
        const AsId as(i);
        ASSERT_EQ(got.best(as), want.best(as))
            << ctx << " dest " << dest.value() << " as " << i;
        const auto gp = got.path(as);
        const auto wp = want.path(as);
        ASSERT_EQ(std::vector<AsId>(gp.begin(), gp.end()),
                  std::vector<AsId>(wp.begin(), wp.end()))
            << ctx << " dest " << dest.value() << " as " << i;
        const auto gr = got.rib(as);
        const auto wr = want.rib(as);
        ASSERT_EQ(std::vector<Route>(gr.begin(), gr.end()),
                  std::vector<Route>(wr.begin(), wr.end()))
            << ctx << " dest " << dest.value() << " as " << i;
        // Per-neighbor probes over every BASE adjacency: stale segment
        // graphs and disabled edges must both answer exactly as a fresh
        // rebuild on the masked graph does.
        for (const auto& nb : base.neighbors(as)) {
          const auto gf = got.rib_from(as, nb.as);
          const auto wf = want.rib_from(as, nb.as);
          ASSERT_EQ(gf.has_value(), wf.has_value())
              << ctx << " dest " << dest.value() << " as " << i << " nb "
              << nb.as.value();
          if (wf) {
            ASSERT_EQ(*gf, *wf)
                << ctx << " dest " << dest.value() << " as " << i;
          }
        }
      }
    }
    // The retained oracle must agree in bulk too.
    ASSERT_TRUE(table.differential_check().empty()) << ctx;
  };

  check_all_views("initial");

  for (std::size_t e = 0; e < num_events; ++e) {
    // Pick an event kind the current state can accept.
    RouteEvent ev = RouteEvent::withdraw(AsId::invalid());
    const std::uint64_t dice = rng.bounded(4);
    if (dice == 0) {  // withdraw a live tracked origin
      const AsId origin = tracked[rng.bounded(tracked.size())];
      ev = RouteEvent::withdraw(origin);
    } else if (dice == 1) {  // reannounce (falls back to withdraw when none)
      if (!withdrawn.empty()) {
        auto it = withdrawn.begin();
        std::advance(it, static_cast<long>(rng.bounded(withdrawn.size())));
        ev = RouteEvent::reannounce(*it);
      } else {
        ev = RouteEvent::withdraw(tracked[rng.bounded(tracked.size())]);
      }
    } else if (dice == 2) {  // flap down a live adjacency
      const auto& [a, b] = edges[rng.bounded(edges.size())];
      ev = RouteEvent::session_down(a, b);
    } else {  // bring back a downed adjacency (falls back to down)
      if (!disabled_edges.empty()) {
        const auto& [a, b] =
            disabled_edges[rng.bounded(disabled_edges.size())];
        ev = RouteEvent::session_up(a, b);
      } else {
        const auto& [a, b] = edges[rng.bounded(edges.size())];
        ev = RouteEvent::session_down(a, b);
      }
    }

    // Capture pre-event segments for the pointer-identity check.
    std::vector<std::shared_ptr<const bgp::RouteSegment>> before;
    before.reserve(tracked.size());
    for (const AsId d : tracked) before.push_back(table.segment(d));

    const DeltaStats st = table.apply(ev);

    // Advance the independent model only when the table claims effect;
    // duplicate-event no-ops are asserted below.
    bool expect_applied = true;
    switch (ev.kind) {
      case RouteEvent::Kind::Withdraw:
        expect_applied = !withdrawn.contains(ev.a);
        if (expect_applied) withdrawn.insert(ev.a);
        break;
      case RouteEvent::Kind::Reannounce:
        expect_applied = withdrawn.contains(ev.a);
        if (expect_applied) withdrawn.erase(ev.a);
        break;
      case RouteEvent::Kind::SessionDown:
        expect_applied = !disabled.contains(edge_key(ev.a, ev.b));
        if (expect_applied) {
          disabled.insert(edge_key(ev.a, ev.b));
          disabled_edges.emplace_back(ev.a, ev.b);
        }
        break;
      case RouteEvent::Kind::SessionUp:
        expect_applied = disabled.contains(edge_key(ev.a, ev.b));
        if (expect_applied) {
          disabled.erase(edge_key(ev.a, ev.b));
          std::erase_if(disabled_edges, [&](const auto& p) {
            return edge_key(p.first, p.second) == edge_key(ev.a, ev.b);
          });
        }
        break;
    }
    ASSERT_EQ(st.applied, expect_applied) << ev.to_string();

    if (st.applied) {
      ASSERT_EQ(st.destinations, tracked.size());
      ASSERT_EQ(st.recomputed + st.patched + st.unchanged, st.destinations)
          << ev.to_string();
      ASSERT_EQ(st.recomputed + st.patched, st.touched_dests.size());
      // Kept destinations must be pointer-identical (no silent rebuild);
      // touched destinations (recomputed or view-patched) must have been
      // swapped to the new epoch.
      std::set<AsId> touched(st.touched_dests.begin(),
                             st.touched_dests.end());
      for (std::size_t i = 0; i < tracked.size(); ++i) {
        const auto after = table.segment(tracked[i]);
        if (touched.contains(tracked[i])) {
          ASSERT_EQ(after->epoch, st.epoch) << ev.to_string();
        } else {
          ASSERT_EQ(after.get(), before[i].get())
              << ev.to_string() << " dest " << tracked[i].value();
        }
      }
    } else {
      ASSERT_EQ(st.recomputed + st.patched, 0u);
      for (std::size_t i = 0; i < tracked.size(); ++i) {
        ASSERT_EQ(table.segment(tracked[i]).get(), before[i].get());
      }
    }

    check_all_views(ev.to_string().c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteDeltaDiff,
                         ::testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace mifo
