// Differential-oracle harness for the CSR route store (DESIGN.md §5.1).
//
// `DestRoutes` and its derived views (`rib_of`, `rib_route_from`, `as_path`,
// `reachable_count`) are retained untouched as the semantic reference;
// `RouteStore` must be element-identical to them for every (as, neighbor,
// dest) on seeded random topologies. On top of the view-level checks, the
// two consumers whose migration changed iteration shape — the MIFO walk
// (neighbor scan -> pre-sorted RIB rows) and MIRO's alternative election
// (collect+sort -> filtered row prefix) — are re-run against in-test
// re-implementations of their legacy DestRoutes-based code paths.
//
// 100 seeded topologies (see the suite instantiation at the bottom), sizes
// cycling 20..120 ASes; small topologies sweep every destination.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/route_store.hpp"
#include "bgp/routing.hpp"
#include "common/rng.hpp"
#include "core/walk.hpp"
#include "miro/miro.hpp"
#include "topo/generator.hpp"
#include "topo/relationship.hpp"

namespace mifo {
namespace {

using bgp::DestRoutes;
using bgp::Route;
using bgp::RouteStore;

// ---------------------------------------------------------------------------
// Legacy re-implementations (the pre-CSR code paths, DestRoutes-based).
// ---------------------------------------------------------------------------

double spare_of(const core::UtilizationFn& utilization, LinkId l) {
  const double u = utilization(l);
  return u >= 1.0 ? 0.0 : 1.0 - u;
}

double legacy_probe_spare(const topo::AsGraph& g, const DestRoutes& routes,
                          AsId cur, AsId via,
                          const core::UtilizationFn& utilization) {
  double spare = spare_of(utilization, g.link(cur, via));
  AsId hop = via;
  std::size_t guard = 0;
  while (hop != routes.dest()) {
    const Route& r = routes.best(hop);
    if (!r.valid()) return 0.0;
    spare = std::min(spare, spare_of(utilization, g.link(hop, r.next_hop)));
    hop = r.next_hop;
    if (++guard > routes.num_ases()) return 0.0;
  }
  return spare;
}

/// The walk exactly as it shipped before the CSR store: alternatives come
/// from a g.neighbors() scan with per-neighbor `rib_route_from` calls.
core::WalkResult legacy_mifo_walk(const topo::AsGraph& g,
                                  const DestRoutes& routes,
                                  const std::vector<bool>& deployed, AsId src,
                                  const core::UtilizationFn& utilization,
                                  const core::WalkConfig& cfg = {}) {
  core::WalkResult res;
  if (!routes.best(src).valid()) return res;

  const AsId dst = routes.dest();
  AsId cur = src;
  bool tag = true;
  res.path.push_back(cur);

  while (cur != dst) {
    const Route& def = routes.best(cur);
    AsId next = def.next_hop;
    const LinkId def_link = g.link(cur, next);

    if (deployed[cur.value()] &&
        utilization(def_link) >= cfg.congest_threshold) {
      const bool probe = cfg.selection == core::AltSelection::EndToEndProbe;
      AsId best = AsId::invalid();
      double best_spare =
          (probe ? legacy_probe_spare(g, routes, cur, next, utilization)
                 : spare_of(utilization, def_link)) +
          cfg.min_spare_margin;
      for (const auto& nb : g.neighbors(cur)) {
        if (nb.as == next) continue;
        if (!topo::check_bit(tag, nb.rel)) continue;
        const auto offer = bgp::rib_route_from(g, routes, cur, nb.as);
        if (!offer) continue;
        if (offer->path_len > def.path_len + cfg.max_extra_hops) continue;
        const double spare =
            probe ? legacy_probe_spare(g, routes, cur, nb.as, utilization)
                  : spare_of(utilization, nb.link);
        if (spare > best_spare ||
            (best.valid() && spare == best_spare && nb.as < best)) {
          best = nb.as;
          best_spare = spare;
        }
      }
      if (best.valid()) {
        next = best;
        ++res.deflections;
      }
    }

    const LinkId hop_link = g.link(cur, next);
    res.links.push_back(hop_link);
    tag = (*g.rel(cur, next) == topo::Rel::Provider);
    cur = next;
    res.path.push_back(cur);
    if (res.path.size() > 2 * g.num_ases() + 2) {
      ADD_FAILURE() << "legacy walk looped";
      return res;
    }
  }

  res.reachable = true;
  return res;
}

/// MIRO alternative election as it shipped before the CSR store:
/// collect every same-class RIB offer, then sort, then truncate.
std::vector<Route> legacy_miro_alternatives(const topo::AsGraph& g,
                                            const DestRoutes& routes,
                                            AsId src,
                                            const std::vector<bool>& deployed,
                                            const miro::MiroConfig& cfg = {}) {
  std::vector<Route> alts;
  if (!deployed[src.value()]) return alts;
  const Route& def = routes.best(src);
  if (!def.valid() || def.cls == bgp::RouteClass::Self) return alts;
  for (const auto& nb : g.neighbors(src)) {
    if (nb.as == def.next_hop) continue;
    if (!deployed[nb.as.value()]) continue;
    const auto offer = bgp::rib_route_from(g, routes, src, nb.as);
    if (!offer) continue;
    if (offer->cls != def.cls) continue;
    alts.push_back(*offer);
  }
  std::sort(alts.begin(), alts.end(),
            [](const Route& a, const Route& b) { return a.better_than(b); });
  if (alts.size() > cfg.max_alternatives) alts.resize(cfg.max_alternatives);
  return alts;
}

// ---------------------------------------------------------------------------
// The seeded sweep. Each seed is one topology; sizes cycle with the seed so
// the 100-seed suite covers 20..120 ASes.
// ---------------------------------------------------------------------------

class RouteStoreDiff : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static topo::AsGraph make(std::uint64_t seed) {
    topo::GeneratorParams p;
    p.num_ases = 20 + (seed % 5) * 25;  // 20, 45, 70, 95, 120
    p.seed = seed;
    return topo::generate_topology(p);
  }

  /// Destinations to sweep: every AS on small topologies, a stride plus the
  /// seed-dependent remainder on larger ones.
  static std::vector<AsId> dests(const topo::AsGraph& g, std::uint64_t seed) {
    std::vector<AsId> d;
    const std::uint32_t n = static_cast<std::uint32_t>(g.num_ases());
    const std::uint32_t stride = n <= 45 ? 1 : 7;
    for (std::uint32_t i = static_cast<std::uint32_t>(seed % stride); i < n;
         i += stride) {
      d.emplace_back(i);
    }
    return d;
  }
};

TEST_P(RouteStoreDiff, ViewsMatchOracleForEveryAsNeighborDest) {
  const std::uint64_t seed = GetParam();
  const topo::AsGraph g = make(seed);

  for (const AsId dest : dests(g, seed)) {
    const DestRoutes oracle = bgp::compute_routes(g, dest);
    const RouteStore store(g, oracle);

    ASSERT_EQ(store.dest(), dest);
    ASSERT_EQ(store.num_ases(), oracle.num_ases());
    ASSERT_EQ(store.num_reachable(), bgp::reachable_count(oracle));

    for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
      const AsId as(i);
      // Best routes, element-identical.
      ASSERT_EQ(store.best(as), oracle.best(as)) << "as " << i;

      // Reconstructed AS path.
      const auto want_path = bgp::as_path(g, oracle, as);
      const auto got_path = store.path(as);
      ASSERT_EQ(std::vector<AsId>(got_path.begin(), got_path.end()),
                want_path)
          << "as " << i;

      // Full RIB row, order included (both are decision-process sorted).
      const auto want_rib = bgp::rib_of(g, oracle, as);
      const auto got_rib = store.rib(as);
      ASSERT_EQ(std::vector<Route>(got_rib.begin(), got_rib.end()), want_rib)
          << "as " << i;

      // Per-neighbor lookups: export rule + loop poisoning, O(1) vs the
      // oracle's best-chain walk.
      for (const auto& nb : g.neighbors(as)) {
        const auto want = bgp::rib_route_from(g, oracle, as, nb.as);
        const auto got = store.rib_from(as, nb.as);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "as " << i << " nb " << nb.as.value();
        if (want) ASSERT_EQ(*got, *want);
      }
    }
  }
}

TEST_P(RouteStoreDiff, AncestorCheckMatchesBestChainMembership) {
  // on_best_path (the Euler-tour interval test) against explicit best-chain
  // membership, all (as, of) pairs on the small topologies.
  const std::uint64_t seed = GetParam();
  const topo::AsGraph g = make(seed);
  if (g.num_ases() > 45) GTEST_SKIP() << "all-pairs check on small sizes";

  for (const AsId dest : dests(g, seed)) {
    const DestRoutes oracle = bgp::compute_routes(g, dest);
    const RouteStore store(g, oracle);
    for (std::uint32_t of = 0; of < g.num_ases(); ++of) {
      std::unordered_set<std::uint32_t> chain;
      for (const AsId hop : bgp::as_path(g, oracle, AsId(of))) {
        chain.insert(hop.value());
      }
      for (std::uint32_t as = 0; as < g.num_ases(); ++as) {
        ASSERT_EQ(store.on_best_path(AsId(as), AsId(of)), chain.contains(as))
            << "dest " << dest.value() << " as " << as << " of " << of;
      }
    }
  }
}

TEST_P(RouteStoreDiff, StoreFromGraphEqualsStoreFromOracle) {
  // The convenience constructor must produce the same flattened state as
  // flattening an externally computed DestRoutes.
  const std::uint64_t seed = GetParam();
  const topo::AsGraph g = make(seed);
  const AsId dest(static_cast<std::uint32_t>(seed % g.num_ases()));
  const RouteStore direct(g, dest);
  const RouteStore via_oracle(g, bgp::compute_routes(g, dest));
  ASSERT_EQ(direct.num_reachable(), via_oracle.num_reachable());
  ASSERT_EQ(direct.bytes(), via_oracle.bytes());
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(i);
    ASSERT_EQ(direct.best(as), via_oracle.best(as));
    const auto pa = direct.path(as);
    const auto pb = via_oracle.path(as);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
    const auto ra = direct.rib(as);
    const auto rb = via_oracle.rib(as);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()));
  }
}

TEST_P(RouteStoreDiff, WalkMatchesLegacyNeighborScan) {
  // The CSR walk iterates pre-sorted RIB rows; the legacy walk scanned
  // g.neighbors() and recomputed offers. Same path, hop for hop, under
  // random congestion/deployment — for both selection policies.
  const std::uint64_t seed = GetParam();
  const topo::AsGraph g = make(seed);
  Rng rng(seed * 7919 + 1);

  for (int trial = 0; trial < 3; ++trial) {
    const AsId dest(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    const DestRoutes oracle = bgp::compute_routes(g, dest);
    const RouteStore store(g, oracle);

    const double ratio = trial == 0 ? 1.0 : rng.uniform();
    std::vector<bool> deployed(g.num_ases());
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      deployed[i] = rng.bernoulli(ratio);
    }
    std::unordered_map<std::uint32_t, double> util_map;
    Rng util_rng = rng.split();
    auto util = [&](LinkId l) -> double {
      auto [it, inserted] = util_map.try_emplace(l.value(), 0.0);
      if (inserted) {
        it->second = util_rng.bernoulli(0.5) ? 0.9 + 0.1 * util_rng.uniform()
                                             : 0.5 * util_rng.uniform();
      }
      return it->second;
    };

    core::WalkConfig cfg;
    cfg.selection = trial == 2 ? core::AltSelection::EndToEndProbe
                               : core::AltSelection::LocalGreedy;
    for (std::uint32_t s = 0; s < g.num_ases(); s += 2) {
      if (AsId(s) == dest) continue;
      const auto got = core::mifo_walk(g, store, deployed, AsId(s), util, cfg);
      const auto want =
          legacy_mifo_walk(g, oracle, deployed, AsId(s), util, cfg);
      ASSERT_EQ(got.reachable, want.reachable) << "src " << s;
      ASSERT_EQ(got.path, want.path) << "src " << s;
      ASSERT_EQ(got.links, want.links) << "src " << s;
      ASSERT_EQ(got.deflections, want.deflections) << "src " << s;

      // bgp_walk must reproduce the oracle's as_path verbatim.
      const auto bgp_got = core::bgp_walk(g, store, AsId(s));
      ASSERT_EQ(bgp_got.path, bgp::as_path(g, oracle, AsId(s)));
    }
  }
}

TEST_P(RouteStoreDiff, MiroElectionMatchesLegacyCollectAndSort) {
  const std::uint64_t seed = GetParam();
  const topo::AsGraph g = make(seed);
  Rng rng(seed * 104729 + 3);

  for (int trial = 0; trial < 2; ++trial) {
    const AsId dest(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    const DestRoutes oracle = bgp::compute_routes(g, dest);
    const RouteStore store(g, oracle);
    const double ratio = trial == 0 ? 1.0 : 0.5;
    std::vector<bool> deployed(g.num_ases());
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      deployed[i] = rng.bernoulli(ratio);
    }
    miro::MiroConfig cfg;
    cfg.max_alternatives = 1 + trial;
    for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
      const auto got = miro::alternatives(g, store, AsId(s), deployed, cfg);
      const auto want =
          legacy_miro_alternatives(g, oracle, AsId(s), deployed, cfg);
      ASSERT_EQ(got, want) << "src " << s;
      ASSERT_EQ(miro::path_count(g, store, AsId(s), deployed, cfg),
                oracle.best(AsId(s)).valid()
                    ? (oracle.best(AsId(s)).cls == bgp::RouteClass::Self
                           ? 1
                           : 1 + want.size())
                    : 0);
      for (const Route& alt : got) {
        std::vector<AsId> legacy_path{AsId(s)};
        const auto tail = bgp::as_path(g, oracle, alt.next_hop);
        legacy_path.insert(legacy_path.end(), tail.begin(), tail.end());
        ASSERT_EQ(miro::alt_path(g, store, AsId(s), alt.next_hop),
                  legacy_path);
      }
    }
  }
}

// 100 seeded topologies, sizes cycling 20..120 ASes via (seed % 5).
INSTANTIATE_TEST_SUITE_P(Seeds, RouteStoreDiff,
                         ::testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace mifo
