#include "bgp/path_count.hpp"

#include <gtest/gtest.h>

#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "topo/relationship.hpp"

namespace mifo::bgp {
namespace {

using topo::AsGraph;
using topo::Rel;

/// Brute-force walk enumeration from first principles: DFS over (AS, tag)
/// applying the BGP export check and the Tag-Check rule per hop;
/// non-deployed ASes may only use their default next hop. Exponential, for
/// tiny graphs only.
double brute_count(const AsGraph& g, const DestRoutes& routes,
                   const std::vector<bool>& deployed, AsId cur, bool tag) {
  if (cur == routes.dest()) return 1.0;
  double total = 0.0;
  auto try_step = [&](AsId next, Rel next_rel) {
    // Eq. 3 via the tag.
    if (!topo::check_bit(tag, next_rel)) return;
    // The next AS must export a route for the destination to us.
    if (!rib_route_from(g, routes, cur, next)) return;
    const bool next_tag = (next_rel == Rel::Provider);
    total += brute_count(g, routes, deployed, next, next_tag);
  };
  if (deployed[cur.value()]) {
    for (const auto& nb : g.neighbors(cur)) try_step(nb.as, nb.rel);
  } else {
    const Route& def = routes.best(cur);
    if (def.valid() && def.cls != RouteClass::Self) {
      try_step(def.next_hop, *g.rel(cur, def.next_hop));
    }
  }
  return total;
}

AsGraph fig2a() {
  AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));
  return g;
}

TEST(PathCount, Fig2aFullDeployment) {
  const AsGraph g = fig2a();
  const RouteStore routes(g, AsId(0));
  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> all(4, true);
  const auto counts = count_mifo_paths(g, routes, order, all);
  // From AS1: direct (1-0), via peer 2 (1-2-0), via peer 3 (1-3-0). The
  // two-peer walks (1-2-3-0 etc.) are refused by Eq. 3.
  EXPECT_DOUBLE_EQ(counts.paths_from(AsId(1)), 3.0);
  EXPECT_DOUBLE_EQ(counts.paths_from(AsId(2)), 3.0);
  EXPECT_DOUBLE_EQ(counts.paths_from(AsId(3)), 3.0);
}

TEST(PathCount, ZeroDeploymentIsSinglePath) {
  const AsGraph g = fig2a();
  const RouteStore routes(g, AsId(0));
  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> none(4, false);
  const auto counts = count_mifo_paths(g, routes, order, none);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_DOUBLE_EQ(counts.paths_from(AsId(i)), 1.0);
  }
}

TEST(PathCount, UnreachableIsZero) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  const RouteStore routes(g, AsId(2));
  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> all(3, true);
  const auto counts = count_mifo_paths(g, routes, order, all);
  EXPECT_DOUBLE_EQ(counts.paths_from(AsId(0)), 0.0);
}

class PathCountProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(PathCountProperty, DpMatchesBruteForce) {
  auto [seed, ratio] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = 12;  // brute force is exponential
  p.num_tier1 = 3;
  p.seed = seed;
  const AsGraph g = topo::generate_topology(p);
  const auto order = topo::pc_topological_order(g);

  // Deterministic pseudo-random deployment.
  std::vector<bool> deployed(g.num_ases());
  Rng rng(seed * 31 + 7);
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    deployed[i] = rng.bernoulli(ratio);
  }

  for (std::uint32_t d = 0; d < g.num_ases(); ++d) {
    // The DP consumes the CSR store; the brute-force oracle keeps walking
    // the legacy DestRoutes views (oracle-retention policy).
    const auto oracle = compute_routes(g, AsId(d));
    const RouteStore routes(g, oracle);
    const auto counts = count_mifo_paths(g, routes, order, deployed);
    for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
      if (s == d) continue;
      const double expected =
          brute_count(g, oracle, deployed, AsId(s), true);
      ASSERT_DOUBLE_EQ(counts.paths_from(AsId(s)), expected)
          << "dest " << d << " src " << s << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRatios, PathCountProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

TEST(PathCountProperty, DeploymentMonotonicity) {
  topo::GeneratorParams p;
  p.num_ases = 80;
  p.seed = 17;
  const topo::AsGraph g = topo::generate_topology(p);
  const auto order = topo::pc_topological_order(g);
  const RouteStore routes(g, AsId(0));

  std::vector<bool> half(g.num_ases(), false);
  for (std::size_t i = 0; i < half.size(); i += 2) half[i] = true;
  std::vector<bool> all(g.num_ases(), true);

  const auto c_none =
      count_mifo_paths(g, routes, order, std::vector<bool>(g.num_ases(), false));
  const auto c_half = count_mifo_paths(g, routes, order, half);
  const auto c_all = count_mifo_paths(g, routes, order, all);
  for (std::uint32_t s = 1; s < g.num_ases(); ++s) {
    EXPECT_LE(c_none.paths_from(AsId(s)), c_half.paths_from(AsId(s)));
    EXPECT_LE(c_half.paths_from(AsId(s)), c_all.paths_from(AsId(s)));
  }
}

TEST(PathCountProperty, ReachableIffPositive) {
  topo::GeneratorParams p;
  p.num_ases = 100;
  p.seed = 23;
  const topo::AsGraph g = topo::generate_topology(p);
  const auto order = topo::pc_topological_order(g);
  const RouteStore routes(g, AsId(5));
  const auto counts = count_mifo_paths(
      g, routes, order, std::vector<bool>(g.num_ases(), true));
  for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
    if (s == 5) continue;
    EXPECT_EQ(routes.best(AsId(s)).valid(),
              counts.paths_from(AsId(s)) > 0.0)
        << "AS " << s;
  }
}

}  // namespace
}  // namespace mifo::bgp
