// Property tests: the three-phase route computation must agree with an
// independent fixpoint iteration of the BGP decision process, and its
// selected paths must be valley-free.

#include <gtest/gtest.h>

#include "bgp/routing.hpp"
#include "topo/generator.hpp"
#include "topo/relationship.hpp"

namespace mifo::bgp {
namespace {

using topo::AsGraph;
using topo::Rel;

/// Reference implementation: synchronous best-response iteration until
/// fixpoint. Slow (O(rounds * E)) but derived directly from the BGP
/// decision process and export rule, with none of the three-phase insight.
std::vector<Route> reference_routes(const AsGraph& g, AsId dest) {
  const std::size_t n = g.num_ases();
  std::vector<Route> cur(n);
  cur[dest.value()] = Route{RouteClass::Self, 0, dest};
  for (std::size_t round = 0; round < 2 * n + 2; ++round) {
    bool changed = false;
    std::vector<Route> next = cur;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (AsId(i) == dest) continue;
      Route best;
      for (const auto& nb : g.neighbors(AsId(i))) {
        const Route& offer = cur[nb.as.value()];
        if (!offer.valid()) continue;
        // Does the neighbor export its best route to us?
        const Rel we_are_to_them = topo::reverse(nb.rel);
        if (!may_export(offer.cls, we_are_to_them)) continue;
        const Route imported{classify(nb.rel),
                             static_cast<std::uint16_t>(offer.path_len + 1),
                             nb.as};
        if (imported.better_than(best)) best = imported;
      }
      if (!(best == cur[i])) {
        next[i] = best;
        changed = true;
      }
    }
    cur = std::move(next);
    if (!changed) return cur;
  }
  ADD_FAILURE() << "reference iteration did not converge";
  return cur;
}

class RoutingFixpoint
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(RoutingFixpoint, ThreePhaseMatchesFixpoint) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  const AsGraph g = topo::generate_topology(p);
  // Check several destinations per graph.
  for (std::uint32_t d = 0; d < g.num_ases(); d += 7) {
    const auto fast = compute_routes(g, AsId(d));
    const auto ref = reference_routes(g, AsId(d));
    for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
      const Route& a = fast.best(AsId(i));
      const Route& b = ref[i];
      ASSERT_EQ(a.cls, b.cls) << "dest " << d << " as " << i;
      if (a.valid()) {
        ASSERT_EQ(a.path_len, b.path_len) << "dest " << d << " as " << i;
        ASSERT_EQ(a.next_hop, b.next_hop) << "dest " << d << " as " << i;
      }
    }
  }
}

TEST_P(RoutingFixpoint, SelectedPathsAreValleyFree) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed + 1000;
  const AsGraph g = topo::generate_topology(p);
  for (std::uint32_t d = 0; d < g.num_ases(); d += 11) {
    const auto routes = compute_routes(g, AsId(d));
    for (std::uint32_t s = 0; s < g.num_ases(); s += 5) {
      const auto path = as_path(g, routes, AsId(s));
      if (path.size() < 2) continue;
      std::vector<topo::StepDir> steps;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        steps.push_back(topo::step_dir(*g.rel(path[i], path[i + 1])));
      }
      ASSERT_TRUE(topo::is_valley_free(steps))
          << "dest " << d << " src " << s;
      // Path length bookkeeping: hops == path_len.
      ASSERT_EQ(path.size() - 1, routes.best(AsId(s)).path_len);
    }
  }
}

TEST_P(RoutingFixpoint, BestDominatesEveryRibOffer) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed + 2000;
  const AsGraph g = topo::generate_topology(p);
  for (std::uint32_t d = 0; d < g.num_ases(); d += 13) {
    const auto routes = compute_routes(g, AsId(d));
    for (std::uint32_t s = 0; s < g.num_ases(); s += 3) {
      if (s == d) continue;
      const auto rib = rib_of(g, routes, AsId(s));
      const Route& best = routes.best(AsId(s));
      if (rib.empty()) {
        ASSERT_FALSE(best.valid());
        continue;
      }
      // The converged best equals the top RIB entry.
      ASSERT_TRUE(best.valid());
      ASSERT_EQ(rib.front().cls, best.cls);
      ASSERT_EQ(rib.front().path_len, best.path_len);
      ASSERT_EQ(rib.front().next_hop, best.next_hop);
      for (const auto& offer : rib) {
        ASSERT_FALSE(offer.better_than(best));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphSizes, RoutingFixpoint,
    ::testing::Combine(::testing::Values<std::size_t>(20, 60, 150),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace mifo::bgp
