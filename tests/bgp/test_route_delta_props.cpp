// Property tests for the delta routing table (DESIGN.md §5.1b): the
// algebraic laws a delta engine must satisfy regardless of topology —
// withdraw leaves no surviving state, fail/repair pairs round-trip
// bit-for-bit, commuting events are order-insensitive — plus the
// planted-staleness negative control and the epoch-swap publication
// suite the TSan leg of check.sh races against concurrent readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/delta.hpp"
#include "bgp/route_store.hpp"
#include "common/thread_pool.hpp"
#include "topo/generator.hpp"

namespace mifo {
namespace {

using bgp::DeltaRoutingTable;
using bgp::DeltaStats;
using bgp::Route;
using bgp::RouteEvent;
using bgp::RouteStore;

topo::AsGraph make_graph(std::uint64_t seed, std::size_t ases = 48) {
  topo::GeneratorParams p;
  p.num_ases = ases;
  p.seed = seed;
  return topo::generate_topology(p);
}

std::vector<AsId> all_ases(const topo::AsGraph& g) {
  std::vector<AsId> d;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) d.emplace_back(i);
  return d;
}

std::pair<AsId, AsId> some_adjacency(const topo::AsGraph& g,
                                     std::size_t skip = 0) {
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId a(i);
    for (const auto& nb : g.neighbors(a)) {
      if (a < nb.as) {
        if (skip-- == 0) return {a, nb.as};
      }
    }
  }
  ADD_FAILURE() << "topology has too few adjacencies";
  return {AsId::invalid(), AsId::invalid()};
}

// ---------------------------------------------------------------------------
// Withdraw semantics.
// ---------------------------------------------------------------------------

TEST(RouteDeltaProps, WithdrawLeavesNoSurvivingRoute) {
  const topo::AsGraph g = make_graph(11);
  DeltaRoutingTable table(g, all_ases(g));
  const AsId origin(3);

  const DeltaStats st = table.apply(RouteEvent::withdraw(origin));
  ASSERT_TRUE(st.applied);
  EXPECT_EQ(st.recomputed, 1u);  // per-destination independence
  EXPECT_EQ(st.touched_dests, std::vector<AsId>{origin});

  const auto seg = table.segment(origin);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->store.num_reachable(), 0u);
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(i);
    EXPECT_FALSE(seg->store.best(as).valid()) << "as " << i;
    EXPECT_TRUE(seg->store.rib(as).empty()) << "as " << i;
    EXPECT_TRUE(seg->store.path(as).empty()) << "as " << i;
    for (const auto& nb : g.neighbors(as)) {
      EXPECT_FALSE(seg->store.rib_from(as, nb.as).has_value())
          << "as " << i << " nb " << nb.as.value();
    }
  }
  // Every other destination is untouched by a prefix event.
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    if (AsId(i) == origin) continue;
    EXPECT_GT(table.segment(AsId(i))->store.num_reachable(), 0u);
  }
}

TEST(RouteDeltaProps, DuplicateEventsAreNoOps) {
  const topo::AsGraph g = make_graph(12);
  DeltaRoutingTable table(g, all_ases(g));
  const AsId origin(5);
  const auto [a, b] = some_adjacency(g);

  ASSERT_TRUE(table.apply(RouteEvent::withdraw(origin)).applied);
  EXPECT_FALSE(table.apply(RouteEvent::withdraw(origin)).applied);
  EXPECT_FALSE(table.apply(RouteEvent::reannounce(AsId(6))).applied);

  ASSERT_TRUE(table.apply(RouteEvent::session_down(a, b)).applied);
  EXPECT_FALSE(table.apply(RouteEvent::session_down(a, b)).applied);
  EXPECT_FALSE(table.apply(RouteEvent::session_down(b, a)).applied);
  ASSERT_TRUE(table.apply(RouteEvent::session_up(b, a)).applied);
  EXPECT_FALSE(table.apply(RouteEvent::session_up(a, b)).applied);
}

// ---------------------------------------------------------------------------
// Round trips: fail/repair pairs restore every view bit-for-bit.
// ---------------------------------------------------------------------------

TEST(RouteDeltaProps, WithdrawReannounceRoundTripsBitForBit) {
  const topo::AsGraph g = make_graph(13);
  DeltaRoutingTable table(g, all_ases(g));
  const AsId origin(7);

  const auto before = table.segment(origin);
  ASSERT_TRUE(table.apply(RouteEvent::withdraw(origin)).applied);
  ASSERT_TRUE(table.apply(RouteEvent::reannounce(origin)).applied);
  const auto after = table.segment(origin);

  ASSERT_NE(after.get(), before.get());  // genuinely recomputed...
  EXPECT_TRUE(bgp::stores_identical(before->store, after->store));
}

TEST(RouteDeltaProps, SessionDownUpRoundTripsBitForBit) {
  const topo::AsGraph g = make_graph(14);
  const std::vector<AsId> dests = all_ases(g);
  DeltaRoutingTable table(g, dests);
  const auto [a, b] = some_adjacency(g, 2);

  std::vector<std::shared_ptr<const bgp::RouteSegment>> before;
  for (const AsId d : dests) before.push_back(table.segment(d));

  ASSERT_TRUE(table.apply(RouteEvent::session_down(a, b)).applied);
  ASSERT_TRUE(table.apply(RouteEvent::session_up(a, b)).applied);

  for (std::size_t i = 0; i < dests.size(); ++i) {
    EXPECT_TRUE(bgp::stores_identical(before[i]->store,
                                      table.segment(dests[i])->store))
        << "dest " << dests[i].value();
  }
  EXPECT_TRUE(table.differential_check().empty());
}

TEST(RouteDeltaProps, NoSurvivingRouteCrossesDownedSession) {
  const topo::AsGraph g = make_graph(15);
  const std::vector<AsId> dests = all_ases(g);
  DeltaRoutingTable table(g, dests);
  const auto [a, b] = some_adjacency(g, 1);

  ASSERT_TRUE(table.apply(RouteEvent::session_down(a, b)).applied);
  for (const AsId d : dests) {
    const auto seg = table.segment(d);
    EXPECT_FALSE(seg->store.rib_from(a, b).has_value()) << d.value();
    EXPECT_FALSE(seg->store.rib_from(b, a).has_value()) << d.value();
    for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
      const auto path = seg->store.path(AsId(i));
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const bool crosses = (path[h] == a && path[h + 1] == b) ||
                             (path[h] == b && path[h + 1] == a);
        EXPECT_FALSE(crosses) << "dest " << d.value() << " via as " << i;
      }
    }
  }
}

TEST(RouteDeltaProps, SessionDownSplitsRecomputeAndPatchByAssignmentChange) {
  // The three-way bucket split is observable from outside: a destination is
  // RECOMPUTED iff its best assignment changed, PATCHED iff its segment was
  // swapped with the assignment reused verbatim, UNCHANGED iff the segment
  // is pointer-identical — and the patched stores must still match the
  // from-scratch oracle (the patch rebuilt the views on the new graph).
  const topo::AsGraph g = make_graph(21);
  const std::vector<AsId> dests = all_ases(g);
  DeltaRoutingTable table(g, dests);

  bool exercised = false;
  for (std::size_t skip = 0; skip < 6; ++skip) {
    const auto [a, b] = some_adjacency(g, skip);
    std::vector<std::shared_ptr<const bgp::RouteSegment>> before;
    for (const AsId d : dests) before.push_back(table.segment(d));

    const DeltaStats st = table.apply(RouteEvent::session_down(a, b));
    ASSERT_TRUE(st.applied);
    std::size_t recomputed = 0;
    std::size_t patched = 0;
    for (std::size_t i = 0; i < dests.size(); ++i) {
      const auto after = table.segment(dests[i]);
      if (after.get() == before[i].get()) {
        // Kept: the old segment held no row across the edge at all.
        EXPECT_FALSE(before[i]->store.rib_from(a, b).has_value());
        EXPECT_FALSE(before[i]->store.rib_from(b, a).has_value());
        continue;
      }
      EXPECT_EQ(after->epoch, st.epoch);
      const auto ob = before[i]->store.all_best();
      const auto nb = after->store.all_best();
      const bool same_assignment =
          std::equal(ob.begin(), ob.end(), nb.begin(), nb.end());
      same_assignment ? ++patched : ++recomputed;
    }
    EXPECT_EQ(recomputed, st.recomputed) << "skip " << skip;
    EXPECT_EQ(patched, st.patched) << "skip " << skip;
    exercised = exercised || (st.recomputed > 0 && st.patched > 0);
    ASSERT_TRUE(table.apply(RouteEvent::session_up(a, b)).applied);
  }
  // At least one edge exercised both buckets in the same event.
  EXPECT_TRUE(exercised);
  EXPECT_TRUE(table.differential_check().empty());
}

// ---------------------------------------------------------------------------
// Order insensitivity: commuting events yield identical views either way.
// ---------------------------------------------------------------------------

TEST(RouteDeltaProps, CommutingEventsAreOrderInsensitive) {
  const topo::AsGraph g = make_graph(16);
  const std::vector<AsId> dests = all_ases(g);
  const AsId origin(9);
  const auto [a, b] = some_adjacency(g, 3);

  DeltaRoutingTable lhs(g, dests);
  ASSERT_TRUE(lhs.apply(RouteEvent::withdraw(origin)).applied);
  ASSERT_TRUE(lhs.apply(RouteEvent::session_down(a, b)).applied);

  DeltaRoutingTable rhs(g, dests);
  ASSERT_TRUE(rhs.apply(RouteEvent::session_down(a, b)).applied);
  ASSERT_TRUE(rhs.apply(RouteEvent::withdraw(origin)).applied);

  for (const AsId d : dests) {
    EXPECT_TRUE(bgp::stores_identical(lhs.segment(d)->store,
                                      rhs.segment(d)->store))
        << "dest " << d.value();
  }
  EXPECT_TRUE(lhs.differential_check().empty());
  EXPECT_TRUE(rhs.differential_check().empty());
}

// ---------------------------------------------------------------------------
// Planted staleness: the negative control the differential oracle must
// catch (the routing-plane analogue of --mutate-valley).
// ---------------------------------------------------------------------------

TEST(RouteDeltaProps, PlantedStaleSegmentIsCaughtByDifferentialCheck) {
  const topo::AsGraph g = make_graph(17);
  DeltaRoutingTable table(g, all_ases(g));
  const AsId victim(4);

  ASSERT_TRUE(table.differential_check().empty());

  table.plant_stale(victim);
  const auto stale = table.segment(victim);
  const DeltaStats st = table.apply(RouteEvent::withdraw(victim));
  ASSERT_TRUE(st.applied);
  // A buggy delta engine's stats would still claim the work happened...
  EXPECT_EQ(st.recomputed, 1u);
  // ...but the published segment is the pre-event one, and the retained
  // from-scratch oracle exposes exactly that destination.
  EXPECT_EQ(table.segment(victim).get(), stale.get());
  EXPECT_EQ(table.differential_check(), std::vector<AsId>{victim});

  // Repairing the skipped destination (the reannounce republishes it
  // honestly) clears the mismatch.
  ASSERT_TRUE(table.apply(RouteEvent::reannounce(victim)).applied);
  EXPECT_TRUE(table.differential_check().empty());
}

// ---------------------------------------------------------------------------
// Epoch-swapped publication under concurrent readers. The check.sh TSan leg
// runs this suite (RouteDeltaEpochSwap.*) to prove the writer's segment
// swaps are properly release/acquire-paired with reader loads; without
// sanitizers it still verifies readers never observe a torn view.
// ---------------------------------------------------------------------------

TEST(RouteDeltaEpochSwap, ReadersNeverObserveTornSegments) {
  const topo::AsGraph g = make_graph(18, 32);
  const std::vector<AsId> dests = all_ases(g);
  DeltaRoutingTable table(g, dests);
  const auto [a, b] = some_adjacency(g);

  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kEvents = 60;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> reads{0};

  ThreadPool pool(kReaders + 1);
  parallel_for(pool, kReaders + 1, [&](std::size_t slot) {
    if (slot == 0) {
      // The single writer: prefix churn and session flaps, interleaved.
      for (std::size_t e = 0; e < kEvents; ++e) {
        const AsId origin(static_cast<std::uint32_t>(e % g.num_ases()));
        switch (e % 4) {
          case 0: table.apply(RouteEvent::withdraw(origin)); break;
          case 1: table.apply(RouteEvent::reannounce(origin)); break;
          case 2: table.apply(RouteEvent::session_down(a, b)); break;
          case 3: table.apply(RouteEvent::session_up(a, b)); break;
        }
      }
      done.store(true, std::memory_order_release);
      return;
    }
    // Readers: hammer every destination's published segment and check an
    // invariant any torn or half-swapped store would break — the store's
    // reachability count equals the number of valid best routes, and every
    // valid best has a non-empty path back to the destination.
    // At least a few passes even if the writer already drained (on a
    // single-core host the writer chunk can run to completion first).
    std::size_t pass = 0;
    do {
      for (const AsId d : dests) {
        const auto seg = table.segment(d);
        if (seg == nullptr) continue;
        std::size_t valid = 0;
        for (std::uint32_t i = 0; i < seg->store.num_ases(); ++i) {
          const AsId as(i);
          if (!seg->store.best(as).valid()) continue;
          ++valid;
          const auto path = seg->store.path(as);
          if (path.empty() || path.back() != d) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (valid != seg->store.num_reachable()) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
      ++pass;
    } while (!done.load(std::memory_order_acquire) || pass < 4);
  });

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(table.differential_check().empty());
}

TEST(RouteDeltaEpochSwap, SegmentsPinGraphVersionsAcrossSwaps) {
  const topo::AsGraph g = make_graph(19, 24);
  DeltaRoutingTable table(g, all_ases(g));
  const auto [a, b] = some_adjacency(g);

  // Hold a pre-event segment like a slow reader would, flap the session,
  // and keep probing the held segment across the toggled edge: the pinned
  // graph version must keep every view answerable and self-consistent.
  const AsId probe_dest(1);
  const auto held = table.segment(probe_dest);
  ASSERT_TRUE(table.apply(RouteEvent::session_down(a, b)).applied);

  EXPECT_EQ(held->graph->num_ases(), g.num_ases());
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(i);
    (void)held->store.best(as);
    (void)held->store.rib(as);
    for (const auto& nb : g.neighbors(as)) {
      (void)held->store.rib_from(as, nb.as);
    }
  }
  // The fresh segment answers the downed edge with "no row".
  const auto fresh = table.segment(probe_dest);
  EXPECT_FALSE(fresh->store.rib_from(a, b).has_value());
  EXPECT_FALSE(fresh->store.rib_from(b, a).has_value());
}

}  // namespace
}  // namespace mifo
