#include "bgp/ibgp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/generator.hpp"

namespace mifo::bgp {
namespace {

topo::AsGraph triangle() {
  topo::AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(0), AsId(2));
  g.add_peering(AsId(1), AsId(2));
  return g;
}

TEST(IbgpPlan, CollapsedAsGetsOneRouter) {
  const auto g = triangle();
  const IbgpPlan plan(g, std::vector<bool>(3, false));
  EXPECT_EQ(plan.num_routers(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.routers_of(AsId(i)).size(), 1u);
    EXPECT_FALSE(plan.expanded(AsId(i)));
  }
}

TEST(IbgpPlan, ExpandedAsGetsRouterPerAdjacency) {
  const auto g = triangle();
  std::vector<bool> expand{true, false, false};
  const IbgpPlan plan(g, expand);
  // AS0 has 2 adjacencies -> 2 routers; AS1/AS2 collapse.
  EXPECT_EQ(plan.routers_of(AsId(0)).size(), 2u);
  EXPECT_EQ(plan.num_routers(), 4u);
  EXPECT_TRUE(plan.expanded(AsId(0)));
}

TEST(IbgpPlan, BorderTowardsResolvesCorrectRouter) {
  const auto g = triangle();
  const IbgpPlan plan(g, std::vector<bool>{true, false, false});
  const RouterId to1 = plan.border_towards(AsId(0), AsId(1));
  const RouterId to2 = plan.border_towards(AsId(0), AsId(2));
  EXPECT_NE(to1, to2);
  EXPECT_EQ(plan.router(to1).external_neighbor, AsId(1));
  EXPECT_EQ(plan.router(to2).external_neighbor, AsId(2));
  // Collapsed AS: any neighbor resolves to the single router.
  EXPECT_EQ(plan.border_towards(AsId(1), AsId(0)),
            plan.border_towards(AsId(1), AsId(2)));
}

TEST(IbgpPlan, IbgpPeersAreFullMeshWithinAs) {
  const auto g = triangle();
  const IbgpPlan plan(g, std::vector<bool>{true, false, false});
  const auto routers = plan.routers_of(AsId(0));
  ASSERT_EQ(routers.size(), 2u);
  const auto peers = plan.ibgp_peers(routers[0]);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], routers[1]);
  // A collapsed AS's router has no iBGP peers.
  EXPECT_TRUE(plan.ibgp_peers(plan.routers_of(AsId(1)).front()).empty());
}

TEST(IbgpPlan, RouterIdsAreDenseAndConsistent) {
  topo::GeneratorParams p;
  p.num_ases = 100;
  const auto g = topo::generate_topology(p);
  // Expand the tier-1s, as the paper does.
  std::vector<bool> expand(g.num_ases(), false);
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    expand[i] = g.info(AsId(i)).tier == 1;
  }
  const IbgpPlan plan(g, expand);
  std::size_t counted = 0;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const auto& rs = plan.routers_of(AsId(i));
    counted += rs.size();
    if (expand[i]) {
      EXPECT_EQ(rs.size(), std::max<std::size_t>(1, g.degree(AsId(i))));
    } else {
      EXPECT_EQ(rs.size(), 1u);
    }
    for (const RouterId r : rs) {
      EXPECT_EQ(plan.router(r).as, AsId(i));
      EXPECT_EQ(plan.router(r).id, r);
    }
  }
  EXPECT_EQ(counted, plan.num_routers());
}

}  // namespace
}  // namespace mifo::bgp
