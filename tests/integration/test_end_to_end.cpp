// Cross-module end-to-end properties on generated topologies: the ordering
// MIFO > MIRO > BGP that the paper's evaluation section reports, offload
// monotonicity in deployment, and path-diversity dominance.

#include <gtest/gtest.h>

#include "bgp/path_count.hpp"
#include "miro/miro.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

namespace mifo {
namespace {

struct Workload {
  topo::AsGraph g;
  std::vector<traffic::FlowSpec> specs;
};

Workload congested_workload(std::size_t ases, std::size_t flows,
                            std::uint64_t seed) {
  topo::GeneratorParams gp;
  gp.num_ases = ases;
  gp.seed = seed;
  Workload w{topo::generate_topology(gp), {}};
  traffic::TrafficParams tp;
  tp.num_flows = flows;
  tp.dest_pool = 12;  // concentrate destinations -> real congestion
  tp.arrival_rate = 200.0;
  tp.seed = seed * 3 + 1;
  w.specs = traffic::uniform_traffic(w.g, tp);
  return w;
}

sim::RunSummary run_mode(const Workload& w, sim::RoutingMode mode,
                         double deploy_ratio) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  sim::FluidSim sim(w.g, cfg);
  sim.set_deployment(
      traffic::random_deployment(w.g.num_ases(), deploy_ratio, 77));
  return sim::summarize(sim.run(w.specs));
}

TEST(EndToEnd, MifoBeatsBgpUnderCongestion) {
  const Workload w = congested_workload(400, 4000, 5);
  const auto bgp = run_mode(w, sim::RoutingMode::Bgp, 0.0);
  const auto mifo = run_mode(w, sim::RoutingMode::Mifo, 1.0);
  EXPECT_GT(mifo.mean_throughput, 1.10 * bgp.mean_throughput);
  EXPECT_GT(mifo.frac_at_500mbps, bgp.frac_at_500mbps);
  EXPECT_GT(mifo.offload, 0.05);
  EXPECT_DOUBLE_EQ(bgp.offload, 0.0);
}

TEST(EndToEnd, MifoAtLeastMatchesMiroAtEqualDeployment) {
  const Workload w = congested_workload(400, 4000, 9);
  const auto miro = run_mode(w, sim::RoutingMode::Miro, 0.5);
  const auto mifo = run_mode(w, sim::RoutingMode::Mifo, 0.5);
  EXPECT_GE(mifo.mean_throughput, 0.98 * miro.mean_throughput);
  // MIFO reroutes hop-by-hop, MIRO only at the source: more offload.
  EXPECT_GE(mifo.offload, miro.offload);
}

TEST(EndToEnd, OffloadGrowsWithDeployment) {
  const Workload w = congested_workload(300, 3000, 11);
  double prev = -1.0;
  for (const double ratio : {0.1, 0.5, 1.0}) {
    const auto s = run_mode(w, sim::RoutingMode::Mifo, ratio);
    EXPECT_GE(s.offload, prev - 0.02) << "ratio " << ratio;
    prev = s.offload;
  }
}

TEST(EndToEnd, PathDiversityMifoDominatesMiroEverywhere) {
  topo::GeneratorParams gp;
  gp.num_ases = 400;
  gp.seed = 13;
  const auto g = topo::generate_topology(gp);
  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> all(g.num_ases(), true);
  const std::vector<bool> half =
      traffic::random_deployment(g.num_ases(), 0.5, 5);

  for (std::uint32_t d = 0; d < 3; ++d) {
    const bgp::RouteStore routes(g, AsId(d));
    const auto full = bgp::count_mifo_paths(g, routes, order, all);
    const auto part = bgp::count_mifo_paths(g, routes, order, half);
    for (std::uint32_t s = 0; s < g.num_ases(); s += 17) {
      if (s == d || !routes.best(AsId(s)).valid()) continue;
      const double miro_paths = static_cast<double>(
          miro::path_count(g, routes, AsId(s), all));
      // MIFO with full deployment >= MIRO fully deployed, and
      // >= partial MIFO >= 1.
      EXPECT_GE(full.paths_from(AsId(s)), miro_paths);
      EXPECT_GE(full.paths_from(AsId(s)), part.paths_from(AsId(s)));
      EXPECT_GE(part.paths_from(AsId(s)), 1.0);
    }
  }
}

TEST(EndToEnd, StabilityMostSwitchingFlowsSwitchOnce) {
  const Workload w = congested_workload(400, 5000, 23);
  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Mifo;
  sim::FluidSim fsim(w.g, cfg);
  fsim.set_deployment(std::vector<bool>(w.g.num_ases(), true));
  const auto rec = fsim.run(w.specs);
  const auto dist = sim::switch_distribution(rec);
  if (dist.total() >= 50) {
    // Paper Fig. 9: 67.7% switch once, 97.5% at most twice.
    EXPECT_GT(dist.fraction_of(1), 0.5);
    EXPECT_GT(dist.fraction_at_most(3), 0.85);
  }
}

TEST(EndToEnd, PowerLawSkewHurtsBgpMoreThanMifo) {
  topo::GeneratorParams gp;
  gp.num_ases = 400;
  gp.seed = 31;
  const auto g = topo::generate_topology(gp);
  traffic::PowerLawParams tp;
  tp.num_flows = 4000;
  tp.alpha = 1.2;
  tp.arrival_rate = 200.0;
  tp.dest_pool = 0;
  const auto specs = traffic::power_law_traffic(g, tp);
  Workload w{g, specs};
  const auto bgp = run_mode(w, sim::RoutingMode::Bgp, 0.0);
  const auto mifo = run_mode(w, sim::RoutingMode::Mifo, 0.5);
  EXPECT_GT(mifo.mean_throughput, bgp.mean_throughput);
}

}  // namespace
}  // namespace mifo
