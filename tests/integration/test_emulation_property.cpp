// Property tests of the emulation builder on random topologies: whatever
// the expansion mask, the built network must route every host prefix from
// every router, keep intra meshes consistent, and deliver end-to-end.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::testbed {
namespace {

class EmulationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmulationProperty, BuiltNetworkIsFullyRouted) {
  const std::uint64_t seed = GetParam();
  topo::GeneratorParams gp;
  gp.num_ases = 40;
  gp.num_tier1 = 3;
  gp.seed = seed;
  const auto g = topo::generate_topology(gp);

  Rng rng(seed * 17 + 3);
  std::vector<bool> expand(g.num_ases());
  for (std::size_t i = 0; i < expand.size(); ++i) {
    expand[i] = rng.bernoulli(0.4);
  }

  EmulationBuilder builder(g, expand);
  std::vector<HostId> hosts;
  for (int h = 0; h < 4; ++h) {
    hosts.push_back(builder.attach_host(
        AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())))));
  }
  Emulation em = builder.finalize();

  // Router count: expanded ASes contribute degree, collapsed contribute 1.
  std::size_t expected_routers = 0;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    expected_routers +=
        expand[i] ? std::max<std::size_t>(1, g.degree(AsId(i))) : 1;
  }
  EXPECT_EQ(em.net->num_routers(), expected_routers);

  // Every router holds a route for every host prefix (connected topology).
  for (const auto& att : em.hosts) {
    for (std::uint32_t r = 0; r < em.net->num_routers(); ++r) {
      EXPECT_TRUE(em.net->router(RouterId(r)).fib().lookup(att.addr))
          << "router " << r << " host addr " << att.addr;
    }
  }

  // Wiring invariants: each egress port really is an eBGP port on a router
  // of that AS; intra ports connect routers of the same AS.
  for (const auto& w : em.wirings) {
    for (const auto& e : w.egresses) {
      const auto& port = em.net->router(e.router).port(e.port);
      EXPECT_EQ(port.kind, dp::PortKind::Ebgp);
      EXPECT_EQ(port.neighbor_as, e.neighbor);
      EXPECT_EQ(em.net->router(e.router).as(), w.as);
    }
    for (const auto& ip : w.intra) {
      EXPECT_EQ(em.net->router(ip.from).as(), w.as);
      EXPECT_EQ(em.net->router(ip.to).as(), w.as);
      EXPECT_EQ(em.net->router(ip.from).port(ip.port).kind,
                dp::PortKind::Ibgp);
    }
  }

  // End-to-end: a flow between the first two hosts completes.
  if (em.hosts.size() >= 2 && em.hosts[0].as != em.hosts[1].as) {
    dp::FlowParams fp;
    fp.src = em.hosts[0].host;
    fp.dst = em.hosts[1].host;
    fp.size = 200 * 1000;
    em.net->start_flow(fp);
    em.net->run_to_completion(30.0);
    EXPECT_TRUE(em.net->flows()[0].done);
  }
}

TEST_P(EmulationProperty, MifoEnabledRunStaysLoopFree) {
  const std::uint64_t seed = GetParam();
  topo::GeneratorParams gp;
  gp.num_ases = 30;
  gp.num_tier1 = 3;
  gp.seed = seed + 100;
  const auto g = topo::generate_topology(gp);
  std::vector<bool> expand(g.num_ases(), false);
  // Expand the tier-1s, as the paper does.
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    expand[i] = g.info(AsId(i)).tier == 1;
  }
  EmulationBuilder builder(g, expand);
  Rng rng(seed);
  std::vector<HostId> hosts;
  for (int h = 0; h < 4; ++h) {
    hosts.push_back(builder.attach_host(
        AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())))));
  }
  Emulation em = builder.finalize();
  // Enable MIFO everywhere.
  std::vector<AsId> all_ases;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    all_ases.push_back(AsId(i));
  }
  em.enable_mifo(all_ases, dp::RouterConfig{});

  for (std::size_t i = 0; i + 1 < hosts.size(); i += 2) {
    dp::FlowParams fp;
    fp.src = hosts[i];
    fp.dst = hosts[i + 1];
    fp.size = 500 * 1000;
    em.net->start_flow(fp);
  }
  em.net->run_to_completion(60.0);

  const auto total = em.net->total_counters();
  EXPECT_EQ(total.ttl_drops, 0u) << "data-plane loop detected";
  for (const auto& f : em.net->flows()) {
    EXPECT_TRUE(f.done);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmulationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace mifo::testbed
