// Cross-shard flight recorder (docs/OBSERVABILITY.md): the merged timeline
// of a multi-worker run must be deterministically ordered and byte-identical
// across same-seed runs, hop paths must match the serial oracle's actual
// forwarding path, shard runtime histograms must appear in snapshots, and
// per-worker metric publishing must stay exactly-once. Named
// ShardedFlightRecorder.* so the scripts/check.sh TSan leg picks it up.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/artifact.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "testbed/emulation.hpp"
#include "testbed/fig11.hpp"
#include "testbed/sharded_emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::testbed {
namespace {

/// A small Fig. 11 run with tracing on: two host pairs, MIFO on the
/// bottleneck AS, faults optional. Returns the merged timeline dump.
struct TracedRun {
  obs::Timeline timeline;
  dp::RouterCounters counters;
  std::vector<std::pair<std::string, std::uint64_t>> drops;
};

TracedRun run_sharded_fig11(std::size_t shards, bool inject_fault) {
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;

  ShardedEmulationBuilder builder(g, expand);
  builder.attach_host(ids.as1);
  builder.attach_host(ids.as2);
  builder.attach_host(ids.as5);
  builder.attach_host(ids.as5);
  ShardedEmulation em = builder.finalize(shards);
  em.enable_mifo({ids.as3}, dp::RouterConfig{}, 0.0050003);
  em.net->enable_tracing(4096);

  for (std::size_t pair = 0; pair < 2; ++pair) {
    dp::FlowParams fp;
    fp.src = em.hosts[pair].host;
    fp.dst = em.hosts[2 + pair].host;
    fp.size = 500 * 1000;
    fp.start = 1e-3 * static_cast<SimTime>(1 + pair);
    em.net->start_flow(fp);
  }

  if (inject_fault) {
    // Fault between parked run_until segments: pull a port on the first
    // router mid-run and restore it later — the chaos pattern on the
    // sharded plane.
    em.net->run_until(0.05);
    em.net->set_port_up(RouterId(0), PortId(0), false);
    em.net->run_until(0.15);
    em.net->set_port_up(RouterId(0), PortId(0), true);
  }
  em.net->run_until(60.0);

  TracedRun r;
  r.timeline = em.net->timeline();
  r.counters = em.net->total_counters();
  r.drops = em.net->drop_breakdown();
  return r;
}

TEST(ShardedFlightRecorder, TimelineByteIdenticalAcrossSameSeedRuns) {
  // The headline determinism claim: two 4-worker runs of the same scenario
  // (with mid-run fault injection) merge to byte-identical timelines.
  const TracedRun a = run_sharded_fig11(4, /*inject_fault=*/true);
  const TracedRun b = run_sharded_fig11(4, /*inject_fault=*/true);
  ASSERT_FALSE(a.timeline.events.empty());
  EXPECT_TRUE(a.timeline.epoch_monotone());
  const std::string dump_a = obs::to_json(a.timeline).dump();
  const std::string dump_b = obs::to_json(b.timeline).dump();
  EXPECT_EQ(dump_a, dump_b);
}

TEST(ShardedFlightRecorder, MergeIsTotallyOrderedByTraceOrder) {
  const TracedRun r = run_sharded_fig11(4, /*inject_fault=*/false);
  ASSERT_GT(r.timeline.events.size(), 1u);
  for (std::size_t i = 1; i < r.timeline.events.size(); ++i) {
    ASSERT_FALSE(obs::trace_order(r.timeline.events[i],
                                  r.timeline.events[i - 1]))
        << "merge order violated at event " << i;
  }
  // Cross-shard context: several shards contributed, and packet events
  // carry the injection context of their origin shard.
  bool multi_shard = false;
  for (const obs::TraceEvent& e : r.timeline.events) {
    multi_shard = multi_shard || e.shard != 0;
  }
  EXPECT_TRUE(multi_shard);
}

/// First-visit router order of one flow's packet-emission events — the
/// rendering rule tools/mifo-trace uses for hop-by-hop paths.
std::vector<std::uint32_t> hop_path(const std::vector<obs::TraceEvent>& evs,
                                    std::uint64_t flow) {
  std::vector<std::uint32_t> path;
  for (const obs::TraceEvent& e : evs) {
    if (e.flow != flow) continue;
    if (e.kind != obs::TraceKind::Forward &&
        e.kind != obs::TraceKind::Deflect && e.kind != obs::TraceKind::Encap &&
        e.kind != obs::TraceKind::Decap) {
      continue;
    }
    bool seen = false;
    for (const std::uint32_t r : path) seen = seen || r == e.router;
    if (!seen) path.push_back(e.router);
  }
  return path;
}

TEST(ShardedFlightRecorder, HopPathMatchesSerialOracle) {
  // One uncongested flow, no ties: the serial tracer's walk is the ground
  // truth for the emulator's forwarding path, and the 4-worker merged
  // timeline must spell out the same router sequence.
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;

  const auto run_one = [&](auto& em, auto& net) {
    dp::FlowParams fp;
    fp.src = em.hosts[0].host;
    fp.dst = em.hosts[1].host;
    fp.size = 100 * 1000;
    fp.start = 1e-3;
    const FlowId id = net.start_flow(fp);
    net.run_until(30.0);
    return id;
  };

  EmulationBuilder sb(g, expand);
  sb.attach_host(ids.as1);
  sb.attach_host(ids.as5);
  Emulation se = sb.finalize();
  obs::Tracer serial_tracer(4096);
  se.net->set_tracer(&serial_tracer);
  const FlowId serial_flow = run_one(se, *se.net);
  ASSERT_TRUE(se.net->flow(serial_flow).done);
  const auto serial_path =
      hop_path(serial_tracer.events(), serial_flow.value());
  ASSERT_GE(serial_path.size(), 2u);

  ShardedEmulationBuilder builder(g, expand);
  builder.attach_host(ids.as1);
  builder.attach_host(ids.as5);
  ShardedEmulation em = builder.finalize(4);
  em.net->enable_tracing(4096);
  const FlowId sharded_flow = run_one(em, *em.net);
  ASSERT_TRUE(em.net->sender_flow(sharded_flow).done);
  const auto sharded_path =
      hop_path(em.net->timeline().events, sharded_flow.value());
  EXPECT_EQ(sharded_path, serial_path);
}

TEST(ShardedFlightRecorder, FlowFilterAppliesToEveryWorkerTracer) {
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;

  ShardedEmulationBuilder builder(g, expand);
  builder.attach_host(ids.as1);
  builder.attach_host(ids.as5);
  builder.attach_host(ids.as2);
  builder.attach_host(ids.as5);
  ShardedEmulation em = builder.finalize(4);
  em.net->enable_tracing(4096);

  std::vector<FlowId> flows;
  for (std::size_t pair = 0; pair < 2; ++pair) {
    dp::FlowParams fp;
    fp.src = em.hosts[2 * pair].host;
    fp.dst = em.hosts[2 * pair + 1].host;
    fp.size = 200 * 1000;
    fp.start = 1e-3 * static_cast<SimTime>(1 + pair);
    flows.push_back(em.net->start_flow(fp));
  }
  em.net->set_trace_flow(flows[0].value());
  em.net->run_until(60.0);

  const obs::Timeline tl = em.net->timeline();
  ASSERT_FALSE(tl.events.empty());
  for (const obs::TraceEvent& e : tl.events) {
    if (e.flow == obs::kNoTraceFlow) continue;  // control-plane events pass
    EXPECT_EQ(e.flow, flows[0].value());
  }
}

TEST(ShardedFlightRecorder, WorkerStatsAndHistogramsPublish) {
  const TracedRun ignored = run_sharded_fig11(2, false);
  (void)ignored;

  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  ShardedEmulationBuilder builder(g, expand);
  builder.attach_host(ids.as1);
  builder.attach_host(ids.as5);
  ShardedEmulation em = builder.finalize(4);
  dp::FlowParams fp;
  fp.src = em.hosts[0].host;
  fp.dst = em.hosts[1].host;
  fp.size = 200 * 1000;
  fp.start = 1e-3;
  em.net->start_flow(fp);
  em.net->run_until(30.0);

  // Every worker ran epochs and recorded window/barrier samples.
  ASSERT_EQ(em.net->worker_stats().size(), 4u);
  for (const auto& ws : em.net->worker_stats()) {
    EXPECT_GT(ws.epochs, 0u);
    EXPECT_GT(ws.epoch_window.total(), 0u);
    EXPECT_GT(ws.barrier_wait.total(), 0u);
  }

  obs::Registry reg;
  em.net->publish_metrics(reg, "engine=sharded");
  const obs::Snapshot snap = reg.snapshot();
  bool window_hist = false;
  bool wait_hist = false;
  for (const auto& h : snap.histograms) {
    window_hist = window_hist || h.name == "dp.epoch_window_seconds";
    wait_hist = wait_hist || h.name == "dp.barrier_wait_seconds";
  }
  EXPECT_TRUE(window_hist);
  EXPECT_TRUE(wait_hist);
  // Per-worker epoch counters, one label per shard.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(snap.value_or("dp.epochs", -1.0,
                            "engine=sharded,shard=" + std::to_string(s)),
              0.0)
        << "shard " << s;
  }
}

TEST(ShardedFlightRecorder, PublishTwiceDoesNotDoubleCount) {
  // The exactly-once regression: a snapshot taken right after a republish
  // (the barrier-rendezvous race the fix pins down) must equal the network
  // counters, and sharded totals must equal the serial oracle's.
  ScaledParams p;
  p.num_ases = 48;
  p.num_tier1 = 4;
  p.num_host_pairs = 8;
  p.flows_per_pair = 2;
  p.flow_size = 200 * 1000;
  p.time_cap = 30.0;
  p.mifo = true;

  const auto totals = [](std::size_t shards, ScaledParams params) {
    params.num_shards = shards;
    return run_scaled(params);
  };
  const ScaledResult serial = totals(0, p);
  const ScaledResult sharded = totals(4, p);
  EXPECT_EQ(serial.outcome_digest, sharded.outcome_digest);

  // Direct publish-twice check on a live sharded network.
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  ShardedEmulationBuilder builder(g, expand);
  builder.attach_host(ids.as1);
  builder.attach_host(ids.as5);
  ShardedEmulation em = builder.finalize(4);
  dp::FlowParams fp;
  fp.src = em.hosts[0].host;
  fp.dst = em.hosts[1].host;
  fp.size = 100 * 1000;
  fp.start = 1e-3;
  em.net->start_flow(fp);
  em.net->run_until(30.0);

  obs::Registry reg;
  em.net->publish_metrics(reg, "phase=x");
  const double once = reg.snapshot().value_or("dp.delivered", -1.0,
                                              "phase=x");
  em.net->publish_metrics(reg, "phase=x");  // republish: must overwrite
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("dp.delivered", -1.0, "phase=x"), once);
  EXPECT_DOUBLE_EQ(snap.value_or("dp.delivered", -1.0, "phase=x"),
                   static_cast<double>(em.net->delivered_pkts()));
  // Histograms must not double either.
  for (const auto& h : snap.histograms) {
    if (h.name != "dp.epoch_window_seconds") continue;
    std::uint64_t worker_total = 0;
    for (const auto& ws : em.net->worker_stats()) {
      worker_total += ws.epoch_window.total();
    }
    EXPECT_EQ(h.hist.total(), worker_total);
  }
}

}  // namespace
}  // namespace mifo::testbed
