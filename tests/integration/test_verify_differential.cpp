// Differential tests: the static verifier's verdict must match what the
// packet emulator actually does. For every Fig. 2 scenario in
// test_loop_scenarios.cpp the verifier proves loop-freedom and the dynamic
// run confirms no TTL exhaustion; for mutated FIBs the verifier reports a
// concrete router-level cycle and a traced probe packet walks exactly that
// cycle until its TTL dies.

#include <gtest/gtest.h>

#include <set>

#include "obs/trace.hpp"
#include "testbed/emulation.hpp"
#include "verify/deflection_graph.hpp"

namespace mifo {
namespace {

using dp::Packet;

std::set<std::uint32_t> cycle_routers(const verify::Cycle& cycle) {
  std::set<std::uint32_t> out;
  for (const verify::Hop& h : cycle.hops) out.insert(h.from.value());
  return out;
}

/// Routers a probe flow visited while being forwarded or deflected.
std::set<std::uint32_t> traced_routers(const obs::Tracer& tracer,
                                       std::uint64_t flow) {
  std::set<std::uint32_t> out;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (ev.flow != flow) continue;
    if (ev.kind == obs::TraceKind::Deflect ||
        ev.kind == obs::TraceKind::Forward) {
      out.insert(ev.router);
    }
  }
  return out;
}

struct RingScenario {
  testbed::Emulation em;
  dp::Addr dst = dp::kInvalidAddr;
  dp::Addr src = dp::kInvalidAddr;
  RouterId r1;
  std::set<std::uint32_t> ring_routers;
};

RingScenario make_ring(bool enforce_tag_check) {
  topo::AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));

  testbed::EmulationBuilder builder(g, std::vector<bool>(4, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  const HostId src_host = builder.attach_host(AsId(1));
  RingScenario sc;
  sc.em = builder.finalize();
  sc.dst = sc.em.attachment(dst_host).addr;
  sc.src = sc.em.attachment(src_host).addr;
  dp::Network& net = *sc.em.net;

  const AsId ring[] = {AsId(1), AsId(2), AsId(3)};
  for (int i = 0; i < 3; ++i) {
    const AsId as = ring[i];
    const AsId next = ring[(i + 1) % 3];
    const RouterId r = sc.em.plan->routers_of(as).front();
    net.router(r).config().mifo_enabled = true;
    net.router(r).config().enforce_tag_check = enforce_tag_check;
    const auto* eg = sc.em.wirings[as.value()].egress_to(next);
    EXPECT_NE(eg, nullptr);
    net.router(r).fib().set_alt(sc.dst, eg->port);
  }
  sc.r1 = sc.em.plan->routers_of(AsId(1)).front();
  for (const std::uint32_t as : {1u, 2u, 3u}) {
    sc.ring_routers.insert(
        sc.em.plan->routers_of(AsId(as)).front().value());
  }
  return sc;
}

void congest_ring_defaults(RingScenario& sc) {
  dp::Network& net = *sc.em.net;
  for (const std::uint32_t as : {1u, 2u, 3u}) {
    const RouterId r = sc.em.plan->routers_of(AsId(as)).front();
    const auto* eg = sc.em.wirings[as].egress_to(AsId(0));
    ASSERT_NE(eg, nullptr);
    for (int i = 0; i < 70; ++i) {
      Packet filler;
      filler.dst = sc.dst;
      filler.flow = FlowId(1000 + as);
      filler.size_bytes = 1000;
      net.transmit_router(r, eg->port, filler);
    }
  }
}

Packet make_probe(dp::Addr src, dp::Addr dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.flow = FlowId(1);
  p.size_bytes = 1000;
  p.mifo_tag = true;  // host-origin tag
  return p;
}

// Faithful Fig. 2(a): the verifier proves the installed state loop-free and
// the dynamic run agrees (the deflected packet dies at a Tag-Check, it
// never loops).
TEST(VerifyDifferential, Fig2aVerdictMatchesDynamics) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/true);
  const auto check = verify::check_loop_freedom(*sc.em.net);
  ASSERT_TRUE(check.loop_free);

  congest_ring_defaults(sc);
  dp::Network& net = *sc.em.net;
  net.router(sc.r1).handle_packet(net, make_probe(sc.src, sc.dst),
                                  PortId::invalid());
  net.run_until(1.0);
  EXPECT_EQ(net.total_counters().ttl_drops, 0u);
}

// Faithful Fig. 2(b): verifier says loop-free; dynamically the returned
// packet is pushed out the alternative and delivered.
TEST(VerifyDifferential, Fig2bVerdictMatchesDynamics) {
  topo::AsGraph g(4);
  const AsId x(0), y(1), z(2), d(3);
  g.add_peering(x, y);
  g.add_peering(x, z);
  g.add_provider_customer(y, d);
  g.add_provider_customer(z, d);

  std::vector<bool> expand(4, false);
  expand[x.value()] = true;
  testbed::EmulationBuilder builder(g, expand);
  const HostId src = builder.attach_host(x);
  const HostId dst = builder.attach_host(d);
  auto em = builder.finalize();
  dp::Network& net = *em.net;
  const RouterId r1 = em.plan->border_towards(x, y);
  const RouterId r2 = em.plan->border_towards(x, z);
  for (const RouterId r : em.plan->routers_of(x)) {
    net.router(r).config().mifo_enabled = true;
  }
  const dp::Addr dst_addr = em.attachment(dst).addr;
  const auto& wx = em.wirings[x.value()];
  net.router(r1).fib().set_alt(dst_addr, wx.intra_port(r1, r2));
  net.router(r2).fib().set_alt(dst_addr, wx.egress_to(z)->port);

  const auto check = verify::check_loop_freedom(net);
  ASSERT_TRUE(check.loop_free);

  const PortId r1_egress = wx.egress_to(y)->port;
  for (int i = 0; i < 70; ++i) {
    Packet filler;
    filler.dst = dst_addr;
    filler.flow = FlowId(99);
    filler.size_bytes = 1000;
    net.transmit_router(r1, r1_egress, filler);
  }
  net.router(r1).handle_packet(net, make_probe(em.attachment(src).addr,
                                               dst_addr),
                               PortId::invalid());
  net.run_until(1.0);
  EXPECT_EQ(net.total_counters().ttl_drops, 0u);
  EXPECT_GE(net.router(r2).counters().returned_detected, 1u);
}

// Mutated ring: with the Tag-Check disabled on the peering triangle the
// verifier reports a concrete three-router cycle — and a traced probe
// packet deflects around exactly those routers until TTL exhaustion.
TEST(VerifyDifferential, MutatedRingCycleIsReproducedByEmulator) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/false);
  dp::Network& net = *sc.em.net;

  const auto check = verify::check_loop_freedom(net);
  ASSERT_FALSE(check.loop_free);
  ASSERT_EQ(check.cycles.size(), 1u);
  EXPECT_EQ(check.cycles.front().dst, sc.dst);
  const std::set<std::uint32_t> predicted = cycle_routers(check.cycles.front());
  EXPECT_EQ(predicted, sc.ring_routers);

  obs::Tracer tracer;
  tracer.set_flow_filter(1);
  net.set_tracer(&tracer);
  congest_ring_defaults(sc);
  net.router(sc.r1).handle_packet(net, make_probe(sc.src, sc.dst),
                                  PortId::invalid());
  net.run_until(1.0);
  net.set_tracer(nullptr);

  // The emulator exhibits the loop the verifier predicted: the probe dies
  // of TTL exhaustion, and the routers it bounced between are exactly the
  // counterexample's.
  EXPECT_EQ(net.total_counters().ttl_drops, 1u);
  EXPECT_EQ(traced_routers(tracer, 1), predicted);
  bool saw_ttl_drop = false;
  for (const obs::TraceEvent& ev : tracer.events()) {
    saw_ttl_drop |= ev.kind == obs::TraceKind::DropTtl;
  }
  EXPECT_TRUE(saw_ttl_drop);
}

// A RIB-unbacked alternative loops even with the Tag-Check fully enforced
// (deflect down to a stub customer whose default climbs straight back).
// The verifier predicts the two-router cycle; the emulator reproduces it.
TEST(VerifyDifferential, RibUnbackedAltCycleIsReproducedByEmulator) {
  topo::AsGraph g(3);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(1), AsId(2));
  testbed::EmulationBuilder builder(g, std::vector<bool>(3, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  const HostId src_host = builder.attach_host(AsId(1));
  auto em = builder.finalize();
  dp::Network& net = *em.net;
  const dp::Addr dst = em.attachment(dst_host).addr;

  const RouterId r1 = em.plan->routers_of(AsId(1)).front();
  const RouterId r2 = em.plan->routers_of(AsId(2)).front();
  net.router(r1).config().mifo_enabled = true;  // Tag-Check stays ON
  const auto* eg = em.wirings[1].egress_to(AsId(2));
  ASSERT_NE(eg, nullptr);
  net.router(r1).fib().set_alt(dst, eg->port);

  const auto check = verify::check_loop_freedom(net);
  ASSERT_FALSE(check.loop_free);
  const std::set<std::uint32_t> predicted = cycle_routers(check.cycles.front());
  EXPECT_EQ(predicted, (std::set<std::uint32_t>{r1.value(), r2.value()}));

  obs::Tracer tracer;
  tracer.set_flow_filter(1);
  net.set_tracer(&tracer);
  // Congest r1's default egress towards AS 0 so the probe deflects.
  const auto* def = em.wirings[1].egress_to(AsId(0));
  ASSERT_NE(def, nullptr);
  for (int i = 0; i < 70; ++i) {
    Packet filler;
    filler.dst = dst;
    filler.flow = FlowId(77);
    filler.size_bytes = 1000;
    net.transmit_router(r1, def->port, filler);
  }
  net.router(r1).handle_packet(net,
                               make_probe(em.attachment(src_host).addr, dst),
                               PortId::invalid());
  net.run_until(1.0);
  net.set_tracer(nullptr);

  EXPECT_EQ(net.total_counters().ttl_drops, 1u);
  EXPECT_EQ(traced_routers(tracer, 1), predicted);
}

}  // namespace
}  // namespace mifo
