// Packet-accounting invariants on the Fig. 11 emulation: after any
// dp::Network run, the engine-level counters must be mutually consistent
// (forwarded >= deflected >= encapsulated) and every host-injected packet
// must be accounted for exactly once — delivered, mis-delivered, stale, or
// in one drop bucket — with nothing silently lost in a queue.

#include <gtest/gtest.h>

#include <cstdint>

#include "dataplane/network.hpp"
#include "obs/registry.hpp"
#include "testbed/fig11.hpp"

namespace mifo::testbed {
namespace {

/// Builds the Fig. 11 emulation with hosts at AS1/AS2 (sources) and two at
/// AS5 (sinks), streams `flows_per_pair` concurrent flows through the
/// shared AS3->AS4 bottleneck, and drains the network.
struct RunResult {
  Emulation em;
  std::uint64_t drop_sum = 0;
};

RunResult run_fig11_workload(bool mifo, std::size_t flows_per_pair = 4,
                             Bytes flow_size = 2 * kMegaByte) {
  const auto g = fig11_graph();
  const Fig11Ids ids;
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;

  EmulationBuilder builder(g, expand);
  const HostId s1 = builder.attach_host(ids.as1);
  const HostId s2 = builder.attach_host(ids.as2);
  const HostId d1 = builder.attach_host(ids.as5);
  const HostId d2 = builder.attach_host(ids.as5);
  RunResult r{builder.finalize(), 0};
  dp::Network& net = *r.em.net;

  if (mifo) r.em.enable_mifo({ids.as3}, dp::RouterConfig{});

  // All flows start at t=0: both pairs contend for AS3->AS4 at once, which
  // is what makes MIFO deflect (and encapsulate towards its iBGP peer).
  for (std::size_t i = 0; i < flows_per_pair; ++i) {
    for (const auto& [src, dst] : {std::pair{s1, d1}, std::pair{s2, d2}}) {
      dp::FlowParams fp;
      fp.src = src;
      fp.dst = dst;
      fp.size = flow_size;
      fp.start = 0.0;
      net.start_flow(fp);
    }
  }
  net.run_to_completion(600.0);

  for (const auto& [reason, count] : net.drop_breakdown()) {
    (void)reason;
    r.drop_sum += count;
  }
  return r;
}

void expect_invariants(const dp::Network& net, std::uint64_t drop_sum) {
  const dp::RouterCounters c = net.total_counters();
  // Every deflection is also a forward; every encapsulation is a
  // deflection to an iBGP peer.
  EXPECT_GE(c.forwarded, c.deflected);
  EXPECT_GE(c.deflected, c.encapsulated);
  // The run drained: nothing parked in a router or host queue.
  EXPECT_EQ(net.queued_pkts(), 0u);
  // Conservation: drop_breakdown() covers every terminal fate except
  // clean delivery (it includes misdelivered and stale_flow buckets).
  EXPECT_EQ(net.injected_pkts(), net.delivered_pkts() + drop_sum);
  EXPECT_EQ(net.misdelivered_pkts(), 0u);
  EXPECT_EQ(net.stale_flow_pkts(), 0u);
}

TEST(CountersConsistency, BgpRunAccountsForEveryPacket) {
  const RunResult r = run_fig11_workload(/*mifo=*/false);
  const dp::Network& net = *r.em.net;
  expect_invariants(net, r.drop_sum);
  // Plain BGP never touches the MIFO machinery.
  const dp::RouterCounters c = net.total_counters();
  EXPECT_EQ(c.deflected, 0u);
  EXPECT_EQ(c.encapsulated, 0u);
  EXPECT_GT(net.injected_pkts(), 0u);
  EXPECT_GT(net.delivered_pkts(), 0u);
  for (const auto& f : net.flows()) EXPECT_TRUE(f.done);
}

TEST(CountersConsistency, MifoRunAccountsForEveryPacket) {
  const RunResult r = run_fig11_workload(/*mifo=*/true);
  const dp::Network& net = *r.em.net;
  expect_invariants(net, r.drop_sum);
  // The bottleneck actually triggered Algorithm 1: deflections happened,
  // and Rd's alternative lives behind an iBGP peer, so encap happened too.
  const dp::RouterCounters c = net.total_counters();
  EXPECT_GT(c.deflected, 0u);
  EXPECT_GT(c.encapsulated, 0u);
  for (const auto& f : net.flows()) EXPECT_TRUE(f.done);
}

TEST(CountersConsistency, PublishMetricsMirrorsRawCounters) {
  const RunResult r = run_fig11_workload(/*mifo=*/true);
  const dp::Network& net = *r.em.net;

  obs::Registry reg;
  net.publish_metrics(reg, "run=fig11");
  const obs::Snapshot snap = reg.snapshot();

  const dp::RouterCounters c = net.total_counters();
  const auto value = [&](const std::string& name,
                         const std::string& labels = "run=fig11") {
    return snap.value_or(name, -1.0, labels);
  };
  EXPECT_EQ(value("dp.forwarded"), static_cast<double>(c.forwarded));
  EXPECT_EQ(value("dp.deflected"), static_cast<double>(c.deflected));
  EXPECT_EQ(value("dp.encapsulated"), static_cast<double>(c.encapsulated));
  EXPECT_EQ(value("dp.injected"), static_cast<double>(net.injected_pkts()));
  EXPECT_EQ(value("dp.delivered"), static_cast<double>(net.delivered_pkts()));
  double drop_metric_sum = 0.0;
  for (const auto& [reason, count] : net.drop_breakdown()) {
    const double v = value("dp.drops", "run=fig11,reason=" + reason);
    EXPECT_EQ(v, static_cast<double>(count)) << reason;
    drop_metric_sum += v;
  }
  // The exported drops reproduce the conservation identity verbatim.
  EXPECT_EQ(value("dp.injected"), value("dp.delivered") + drop_metric_sum);
}

}  // namespace
}  // namespace mifo::testbed
