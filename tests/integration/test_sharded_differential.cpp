// Serial-vs-sharded differential: the retained serial dp::Network is the
// oracle (docs/VERIFICATION.md); the sharded plane must reproduce its
// delivered-packet sets, drop breakdowns and conservation accounting
// bit-for-bit at every worker count. Run under TSan by scripts/check.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/ibgp.hpp"
#include "testbed/fig11.hpp"
#include "testbed/sharded_emulation.hpp"
#include "topo/generator.hpp"

namespace mifo::testbed {
namespace {

ScaledParams small_scaled_params() {
  // TSan-friendly scale: ~50 ASes, 16 flows; finishes in a few seconds of
  // wall clock even instrumented.
  ScaledParams p;
  p.num_ases = 48;
  p.num_tier1 = 4;
  p.num_host_pairs = 8;
  p.flows_per_pair = 2;
  p.flow_size = 200 * 1000;
  p.time_cap = 30.0;
  p.mifo = true;
  return p;
}

TEST(ShardedDifferential, ScaledEmulationMatchesSerialOracle) {
  ScaledParams p = small_scaled_params();
  p.num_shards = 0;
  const ScaledResult oracle = run_scaled(p);
  ASSERT_EQ(oracle.flows_done, oracle.flows_total);
  ASSERT_GT(oracle.delivered_pkts, 0u);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    p.num_shards = shards;
    const ScaledResult r = run_scaled(p);

    EXPECT_EQ(r.num_routers, oracle.num_routers);
    EXPECT_EQ(r.flows_done, r.flows_total);
    EXPECT_EQ(r.injected_pkts, oracle.injected_pkts);
    EXPECT_EQ(r.delivered_pkts, oracle.delivered_pkts);
    EXPECT_EQ(r.ring_overflow, 0u);
    EXPECT_EQ(r.last_completion, oracle.last_completion);
    // Sharded breakdown = serial buckets + trailing ring_overflow.
    ASSERT_EQ(r.drops.size(), oracle.drops.size() + 1);
    for (std::size_t i = 0; i < oracle.drops.size(); ++i) {
      EXPECT_EQ(r.drops[i].first, oracle.drops[i].first);
      EXPECT_EQ(r.drops[i].second, oracle.drops[i].second) << r.drops[i].first;
    }
    // The digest folds in every flow's (done, end_time, receiver progress):
    // equal digests == identical per-flow outcomes, not just equal totals.
    EXPECT_EQ(r.outcome_digest, oracle.outcome_digest);
  }
}

TEST(ShardedDifferential, ShardedRunsAreReproducible) {
  ScaledParams p = small_scaled_params();
  p.num_shards = 4;
  const ScaledResult a = run_scaled(p);
  const ScaledResult b = run_scaled(p);
  EXPECT_EQ(a.outcome_digest, b.outcome_digest);
  EXPECT_EQ(a.injected_pkts, b.injected_pkts);
  EXPECT_EQ(a.ring_overflow, b.ring_overflow);
}

TEST(ShardedDifferential, Fig11DeflectionMatchesSerialUnderMifo) {
  // The paper's Fig. 11 bottleneck (both pairs squeeze through AS3->AS4,
  // MIFO deflects via AS6): heavy congestion plus daemon-driven path
  // switches, compared engine vs engine.
  //
  // This scenario is deliberately tie-heavy: every link is the same rate,
  // both pairs send identical packets, so arrivals from different ingress
  // ports land on the bottleneck router at *identical* timestamps. Serial
  // orders such ties by global creation sequence; a shard orders them by
  // its local sequence — both valid serializations, but not the same one
  // (DESIGN.md §6 spells out the boundary). The differential here is
  // therefore outcome-level: completion, deflection activity, conservation
  // and near-identical delivery — while the tie-free scaled scenario above
  // stays bit-exact.
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;

  constexpr std::size_t kFlowsPerPair = 3;
  constexpr Bytes kFlowSize = 2 * kMegaByte;
  const auto schedule = [&](auto& net, const std::vector<HostAttachment>& h) {
    std::vector<FlowId> flow_ids;
    for (std::size_t i = 0; i < kFlowsPerPair; ++i) {
      for (std::size_t pair = 0; pair < 2; ++pair) {
        dp::FlowParams fp;
        fp.src = h[pair].host;      // s1, s2
        fp.dst = h[2 + pair].host;  // d1, d2
        fp.size = kFlowSize;
        fp.start = 1e-3 * static_cast<SimTime>(2 * i + pair);
        flow_ids.push_back(net.start_flow(fp));
      }
    }
    return flow_ids;
  };

  // Serial oracle.
  EmulationBuilder sb(g, expand);
  sb.attach_host(ids.as1);
  sb.attach_host(ids.as2);
  sb.attach_host(ids.as5);
  sb.attach_host(ids.as5);
  Emulation se = sb.finalize();
  se.enable_mifo({ids.as3}, dp::RouterConfig{}, 0.0050003);
  const auto serial_ids = schedule(*se.net, se.hosts);
  se.net->run_until(120.0);

  for (const std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedEmulationBuilder builder(g, expand);
    builder.attach_host(ids.as1);
    builder.attach_host(ids.as2);
    builder.attach_host(ids.as5);
    builder.attach_host(ids.as5);
    ShardedEmulation em = builder.finalize(shards);
    em.enable_mifo({ids.as3}, dp::RouterConfig{}, 0.0050003);
    const auto ids2 = schedule(*em.net, em.hosts);
    em.net->run_until(120.0);

    // Every flow finishes on both engines and every byte is accounted for.
    ASSERT_EQ(ids2.size(), serial_ids.size());
    for (std::size_t i = 0; i < ids2.size(); ++i) {
      EXPECT_TRUE(se.net->flow(serial_ids[i]).done);
      EXPECT_TRUE(em.net->sender_flow(ids2[i]).done);
      EXPECT_EQ(em.net->receiver_flow(ids2[i]).expected,
                se.net->flow(serial_ids[i]).expected);
    }
    std::uint64_t sharded_drops = 0;
    for (const auto& [reason, count] : em.net->drop_breakdown()) {
      sharded_drops += count;
    }
    EXPECT_EQ(em.net->injected_pkts(),
              em.net->delivered_pkts() + sharded_drops);

    // MIFO's machinery fires on both engines: packets deflect to the AS6
    // detour and get encapsulated, within a few percent of the oracle's
    // volume (tie order shifts which packets deflect, not whether).
    const dp::RouterCounters sc = se.net->total_counters();
    const dp::RouterCounters pc = em.net->total_counters();
    EXPECT_GT(sc.deflected, 0u);
    EXPECT_GT(pc.deflected, 0u);
    EXPECT_GT(pc.encapsulated, 0u);
    const auto near = [](std::uint64_t a, std::uint64_t b, double tol) {
      const double hi = static_cast<double>(std::max(a, b));
      const double lo = static_cast<double>(std::min(a, b));
      return hi - lo <= tol * hi;
    };
    EXPECT_TRUE(near(em.net->delivered_pkts(), se.net->delivered_pkts(), 0.02))
        << em.net->delivered_pkts() << " vs " << se.net->delivered_pkts();
    EXPECT_TRUE(near(pc.forwarded, sc.forwarded, 0.02))
        << pc.forwarded << " vs " << sc.forwarded;
    EXPECT_TRUE(near(pc.deflected, sc.deflected, 0.15))
        << pc.deflected << " vs " << sc.deflected;
  }
}

TEST(ShardedDifferential, ScaledTopologyReachesProductionRouterCount) {
  // The default scaled scenario is the ISSUE's "Fig. 12 at 1000+ routers":
  // verify the expansion rule actually yields that scale (cheap — no FIBs).
  const ScaledParams p;  // defaults
  topo::GeneratorParams gp;
  gp.num_ases = p.num_ases;
  gp.num_tier1 = p.num_tier1;
  gp.seed = p.seed;
  const topo::AsGraph g = topo::generate_topology(gp);
  const bgp::IbgpPlan plan(g, scaled_expand_mask(g, p.expand_degree_cap));
  EXPECT_GE(plan.num_routers(), 1000u);
}

}  // namespace
}  // namespace mifo::testbed
