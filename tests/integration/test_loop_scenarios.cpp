// Packet-level reproductions of the paper's Fig. 2 failure scenarios,
// demonstrating that the implemented mechanisms (Tag-Check bit, IP-in-IP
// returned-packet rule) cut the loops the paper identifies.

#include <gtest/gtest.h>

#include "testbed/emulation.hpp"

namespace mifo {
namespace {

using dp::Packet;

// Fig. 2(a) at packet level: ASes 1,2,3 mutually peer, AS 0 is everyone's
// customer. All alt ports are programmed clockwise (1->2->3->1). With every
// default congested, a deflected packet must be dropped by the Tag-Check at
// the second peer rather than looping.
TEST(LoopScenarios, Fig2aTagCheckCutsDataPlaneLoop) {
  topo::AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));

  testbed::EmulationBuilder builder(g, std::vector<bool>(4, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  const HostId src_host = builder.attach_host(AsId(1));
  auto em = builder.finalize();
  dp::Network& net = *em.net;
  const dp::Addr dst = em.attachment(dst_host).addr;
  (void)src_host;

  // Enable MIFO everywhere with faithful line-20 drops and program the
  // clockwise alternatives by hand (bypassing the daemon's greedy choice).
  const AsId ring[] = {AsId(1), AsId(2), AsId(3)};
  for (int i = 0; i < 3; ++i) {
    const AsId as = ring[i];
    const AsId next = ring[(i + 1) % 3];
    const RouterId r = em.plan->routers_of(as).front();
    net.router(r).config().mifo_enabled = true;
    net.router(r).config().drop_on_congested_no_alt = true;
    const auto* eg = em.wirings[as.value()].egress_to(next);
    ASSERT_NE(eg, nullptr);
    net.router(r).fib().set_alt(dst, eg->port);
  }

  // Congest every default egress towards AS 0.
  for (const AsId as : ring) {
    const RouterId r = em.plan->routers_of(as).front();
    const auto* eg = em.wirings[as.value()].egress_to(AsId(0));
    ASSERT_NE(eg, nullptr);
    for (int i = 0; i < 70; ++i) {
      Packet filler;
      filler.dst = dst;
      filler.flow = FlowId(1000 + as.value());
      filler.size_bytes = 1000;
      net.transmit_router(r, eg->port, filler);
    }
  }

  // Inject a packet at AS1 as if it entered from its *peer* AS3 (tag=0):
  // deflection 1->2 would be chosen clockwise... but check fails at AS1
  // already (alt is a peer, tag=0) -> faithful drop. Inject instead as
  // host-origin (tag=1): AS1 deflects to AS2; at AS2 the tag is now 0 and
  // AS2's alternative (peer AS3) fails the check -> dropped there. Either
  // way: no loop, TTL never exhausted.
  const RouterId r1 = em.plan->routers_of(AsId(1)).front();
  Packet p;
  p.src = em.attachment(src_host).addr;
  p.dst = dst;
  p.flow = FlowId(1);
  p.size_bytes = 1000;
  p.mifo_tag = true;  // host-origin tag
  net.router(r1).handle_packet(net, p, PortId::invalid());
  net.run_until(1.0);

  dp::RouterCounters total = net.total_counters();
  EXPECT_EQ(total.ttl_drops, 0u) << "packet looped until TTL exhaustion";
  // The deflected packet died at the Tag-Check of the second peer.
  EXPECT_GE(total.valley_drops, 1u);
  EXPECT_GE(total.deflected, 1u);
}

// Fig. 2(b) at packet level: without the IP-in-IP returned-packet rule the
// deflected packet would ping-pong between iBGP peers R1 and R2. With it,
// R2 recognises the sender as its own default next hop and pushes the
// packet out the alternative. We assert the packet reaches the host.
TEST(LoopScenarios, Fig2bEncapsulationPreventsIbgpCycle) {
  // AS 10 (two border routers) connects to AS 1 (default) and AS 2 (alt),
  // both providing transit to dest AS 3.
  topo::AsGraph g(4);
  const AsId x(0), y(1), z(2), d(3);
  g.add_peering(x, y);
  g.add_peering(x, z);
  g.add_provider_customer(y, d);
  g.add_provider_customer(z, d);

  std::vector<bool> expand(4, false);
  expand[x.value()] = true;  // AS X gets one border router per neighbor
  testbed::EmulationBuilder builder(g, expand);
  const HostId src = builder.attach_host(x);
  const HostId dst = builder.attach_host(d);
  auto em = builder.finalize();
  dp::Network& net = *em.net;

  // Y has the lower id -> default egress is the border router facing Y
  // (call it R1); the border facing Z is R2.
  const RouterId r1 = em.plan->border_towards(x, y);
  const RouterId r2 = em.plan->border_towards(x, z);
  for (const RouterId r : em.plan->routers_of(x)) {
    net.router(r).config().mifo_enabled = true;
  }
  const dp::Addr dst_addr = em.attachment(dst).addr;
  // Program the alternative AS-wide, as the daemon would: on R1 the alt is
  // the intra link to R2; on R2 it is the eBGP port to Z.
  const auto& wx = em.wirings[x.value()];
  net.router(r1).fib().set_alt(dst_addr, wx.intra_port(r1, r2));
  net.router(r2).fib().set_alt(dst_addr, wx.egress_to(z)->port);

  // Congest R1's default egress so the next packet deflects to R2.
  const PortId r1_egress = wx.egress_to(y)->port;
  for (int i = 0; i < 70; ++i) {
    Packet filler;
    filler.dst = dst_addr;
    filler.flow = FlowId(99);
    filler.size_bytes = 1000;
    net.transmit_router(r1, r1_egress, filler);
  }

  Packet p;
  p.src = em.attachment(src).addr;
  p.dst = dst_addr;
  p.flow = FlowId(1);
  p.size_bytes = 1000;
  p.mifo_tag = true;  // as tagged at the AS entering point / host ingress
  net.router(r1).handle_packet(net, p, PortId::invalid());
  net.run_until(1.0);

  const auto total = net.total_counters();
  // R1 encapsulated towards R2; R2 detected the returned packet and used
  // its alternative instead of bouncing it back.
  EXPECT_GE(net.router(r1).counters().encapsulated, 1u);
  EXPECT_GE(net.router(r2).counters().returned_detected, 1u);
  EXPECT_EQ(total.ttl_drops, 0u);
  EXPECT_EQ(total.valley_drops, 0u);
  // The deflected packet left via Z's egress.
  EXPECT_GE(net.router(r2).port(wx.egress_to(z)->port).pkts_sent_total, 1u);
}

}  // namespace
}  // namespace mifo
