// Integration tests of the emulation builder and the Fig. 11/12 experiment.

#include <gtest/gtest.h>

#include "bgp/routing.hpp"
#include "common/thread_pool.hpp"
#include "testbed/fig11.hpp"

namespace mifo::testbed {
namespace {

TEST(Fig11Graph, MatchesPaperTopology) {
  const auto g = fig11_graph();
  const Fig11Ids ids;
  EXPECT_EQ(g.num_ases(), 6u);
  EXPECT_EQ(g.num_adjacencies(), 6u);
  EXPECT_EQ(g.rel(ids.as3, ids.as1), topo::Rel::Customer);
  EXPECT_EQ(g.rel(ids.as3, ids.as4), topo::Rel::Peer);
  EXPECT_EQ(g.rel(ids.as3, ids.as6), topo::Rel::Peer);
  EXPECT_EQ(g.rel(ids.as4, ids.as5), topo::Rel::Customer);
  EXPECT_EQ(g.rel(ids.as6, ids.as5), topo::Rel::Customer);
}

TEST(Fig11Graph, DefaultPathsGoThroughAs4) {
  const auto g = fig11_graph();
  const Fig11Ids ids;
  const auto routes = bgp::compute_routes(g, ids.as5);
  // AS3 learns two peer routes (via AS4 and AS6); AS4 wins the id
  // tie-break, reproducing the paper's default 3 -> 4 -> 5.
  EXPECT_EQ(routes.best(ids.as3).next_hop, ids.as4);
  const auto path = bgp::as_path(g, routes, ids.as1);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[1], ids.as3);
  EXPECT_EQ(path[2], ids.as4);
  // And the RIB holds the alternative via AS6.
  const auto rib = bgp::rib_of(g, routes, ids.as3);
  ASSERT_EQ(rib.size(), 2u);
  EXPECT_EQ(rib[1].next_hop, ids.as6);
}

TEST(EmulationBuilder, ElevenRoutersLikeThePaper) {
  const auto g = fig11_graph();
  const Fig11Ids ids;
  std::vector<bool> expand(6, false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;
  EmulationBuilder b(g, expand);
  b.attach_host(ids.as1);
  b.attach_host(ids.as2);
  b.attach_host(ids.as5);
  b.attach_host(ids.as5);
  Emulation em = b.finalize();
  EXPECT_EQ(em.net->num_routers(), 11u);  // 1+1+4+2+2
  EXPECT_EQ(em.net->num_hosts(), 4u);
  // AS3's wiring: 4 egresses, full mesh intra (4 routers -> 12 directed).
  const auto& w3 = em.wirings[ids.as3.value()];
  EXPECT_EQ(w3.routers.size(), 4u);
  EXPECT_EQ(w3.egresses.size(), 4u);
  EXPECT_EQ(w3.intra.size(), 12u);
}

TEST(EmulationBuilder, FibsRouteEveryHostFromEveryRouter) {
  const auto g = fig11_graph();
  const Fig11Ids ids;
  std::vector<bool> expand(6, false);
  expand[ids.as3.value()] = true;
  EmulationBuilder b(g, expand);
  const HostId h = b.attach_host(ids.as5);
  Emulation em = b.finalize();
  const dp::Addr addr = em.attachment(h).addr;
  for (std::uint32_t r = 0; r < em.net->num_routers(); ++r) {
    EXPECT_TRUE(
        em.net->router(RouterId(r)).fib().lookup(addr).has_value())
        << "router " << r;
  }
}

TEST(Fig12, MifoBeatsBgpAggregateSubstantially) {
  Fig12Params params;
  params.flow_size = 2 * kMegaByte;  // fast CI run
  params.flows_per_pair = 6;
  params.mifo = false;
  const auto bgp = run_fig12(params);
  params.mifo = true;
  const auto mifo = run_fig12(params);

  ASSERT_EQ(bgp.fct.size(), 12u);
  ASSERT_EQ(mifo.fct.size(), 12u);
  // Paper: +81%. Emulation: expect at least +40% on this scaled workload.
  EXPECT_GT(mifo.aggregate_gbps, bgp.aggregate_gbps * 1.4);
  // MIFO actually used the machinery.
  EXPECT_GT(mifo.counters.deflected, 0u);
  EXPECT_GT(mifo.counters.encapsulated, 0u);
  EXPECT_EQ(bgp.counters.deflected, 0u);
  // All flows complete sooner in wall-clock.
  EXPECT_LT(mifo.total_time, bgp.total_time);
}

TEST(Fig12, FlowCompletionTimesImprove) {
  Fig12Params params;
  params.flow_size = 2 * kMegaByte;
  params.flows_per_pair = 6;
  params.mifo = false;
  const auto bgp = run_fig12(params);
  params.mifo = true;
  const auto mifo = run_fig12(params);
  auto mean = [](const std::vector<double>& xs) {
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  };
  EXPECT_LT(mean(mifo.fct), mean(bgp.fct));
}

TEST(Fig12, ThroughputTraceSumsToTransferredBytes) {
  Fig12Params params;
  params.flow_size = kMegaByte;
  params.flows_per_pair = 3;
  params.mifo = true;
  params.bucket = 0.05;
  const auto res = run_fig12(params);
  double gb_from_trace = 0.0;
  for (const double gbps : res.throughput_gbps) {
    gb_from_trace += gbps * params.bucket;  // gigabits
  }
  const double offered =
      to_megabits(2 * 3 * params.flow_size) / 1000.0;  // gigabits
  EXPECT_NEAR(gb_from_trace, offered, offered * 0.01);
}

TEST(Fig12, ParallelArmsAreIdenticalToSerial) {
  // bench_fig12_testbed runs the BGP and MIFO arms concurrently through
  // bench::run_arms; each arm owns its emulation, so running the same
  // experiment on pool workers must reproduce the serial results exactly.
  Fig12Params params;
  params.flow_size = kMegaByte;
  params.flows_per_pair = 3;
  params.link_sample_interval = 0.05;

  std::vector<Fig12Result> serial(2);
  std::vector<Fig12Result> parallel(2);
  for (std::size_t i = 0; i < 2; ++i) {
    Fig12Params p = params;
    p.mifo = i == 1;
    serial[i] = run_fig12(p);
  }
  ThreadPool pool(2);
  parallel_for(pool, std::size_t{2}, [&](std::size_t i) {
    Fig12Params p = params;
    p.mifo = i == 1;
    parallel[i] = run_fig12(p);
  });

  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(serial[i].fct, parallel[i].fct) << "arm " << i;  // bitwise
    ASSERT_EQ(serial[i].throughput_gbps, parallel[i].throughput_gbps);
    EXPECT_EQ(serial[i].total_time, parallel[i].total_time);
    EXPECT_EQ(serial[i].aggregate_gbps, parallel[i].aggregate_gbps);
    EXPECT_EQ(serial[i].counters.forwarded, parallel[i].counters.forwarded);
    EXPECT_EQ(serial[i].counters.deflected, parallel[i].counters.deflected);
    EXPECT_EQ(serial[i].counters.encapsulated,
              parallel[i].counters.encapsulated);
    ASSERT_EQ(serial[i].link_samples.size(), parallel[i].link_samples.size());
    for (std::size_t k = 0; k < serial[i].link_samples.size(); ++k) {
      EXPECT_EQ(serial[i].link_samples[k].utilization,
                parallel[i].link_samples[k].utilization);
    }
  }
}

TEST(Fig12, LinkSamplingLandsInResult) {
  Fig12Params params;
  params.flow_size = kMegaByte;
  params.flows_per_pair = 3;
  params.mifo = true;
  params.link_sample_interval = 0.05;
  const auto res = run_fig12(params);
  ASSERT_FALSE(res.link_samples.empty());
  // Samples arrive in non-decreasing time order and cover the run.
  for (std::size_t i = 1; i < res.link_samples.size(); ++i) {
    EXPECT_LE(res.link_samples[i - 1].t, res.link_samples[i].t);
  }
  EXPECT_GT(res.link_samples.back().t, 0.0);
  // Off by default: no trace without the opt-in.
  params.link_sample_interval = 0.0;
  EXPECT_TRUE(run_fig12(params).link_samples.empty());
}

TEST(Fig12, NoForwardingAnomalies) {
  Fig12Params params;
  params.flow_size = kMegaByte;
  params.flows_per_pair = 3;
  params.mifo = true;
  const auto res = run_fig12(params);
  EXPECT_EQ(res.counters.ttl_drops, 0u);
  EXPECT_EQ(res.counters.no_route_drops, 0u);
  // Deflections at Rd target the iBGP peer Ra and pass its check: no
  // valley drops in this topology (the tag is set — traffic entered AS3
  // from customers).
  EXPECT_EQ(res.counters.valley_drops, 0u);
}

}  // namespace
}  // namespace mifo::testbed
