// Unit tests of the two newer static-analysis properties on hand-built
// scenarios: the Gao–Rexford valley-freedom prover (host-origin traffic
// only — eBGP-ingress entries would manufacture false valleys) and the
// reachability/blackhole lint with its concrete witness walks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testbed/emulation.hpp"
#include "verify/reachability.hpp"
#include "verify/valley.hpp"

namespace mifo {
namespace {

// The Fig. 2(a) ring with a traffic source attached inside the ring: ASes
// 1,2,3 mutually peer, AS 0 is everyone's customer and hosts `dst`, AS 1
// additionally hosts a source so host-origin traffic enters the ring. Alt
// ports are wired clockwise for `dst`.
struct RingScenario {
  testbed::Emulation em;
  dp::Addr dst = dp::kInvalidAddr;
  RouterId src_router = RouterId::invalid();
};

RingScenario make_ring(bool enforce_tag_check) {
  topo::AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));

  testbed::EmulationBuilder builder(g, std::vector<bool>(4, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  builder.attach_host(AsId(1));
  RingScenario sc;
  sc.em = builder.finalize();
  sc.dst = sc.em.attachment(dst_host).addr;

  const AsId ring[] = {AsId(1), AsId(2), AsId(3)};
  dp::Network& net = *sc.em.net;
  for (int i = 0; i < 3; ++i) {
    const AsId as = ring[i];
    const AsId next = ring[(i + 1) % 3];
    const RouterId r = sc.em.plan->routers_of(as).front();
    net.router(r).config().mifo_enabled = true;
    net.router(r).config().enforce_tag_check = enforce_tag_check;
    const auto* eg = sc.em.wirings[as.value()].egress_to(next);
    EXPECT_NE(eg, nullptr);
    net.router(r).fib().set_alt(sc.dst, eg->port);
  }
  sc.src_router = sc.em.plan->routers_of(AsId(1)).front();
  return sc;
}

TEST(ValleyFreedom, RingIsValleyFreeUnderTagCheck) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/true);
  const auto check = verify::check_valley_freedom(*sc.em.net);
  EXPECT_TRUE(check.valley_free);
  EXPECT_TRUE(check.violations.empty());
  EXPECT_GT(check.stats.states, 0u);
}

TEST(ValleyFreedom, UngatedRingDeflectionIsAConcreteValley) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/false);
  const auto check = verify::check_valley_freedom(*sc.em.net);
  ASSERT_FALSE(check.valley_free);
  // At most one counterexample per destination, and only `dst` has
  // deflection edges wired — the source AS's own prefix stays clean.
  ASSERT_EQ(check.violations.size(), 1u);
  const verify::ValleyViolation& v = check.violations.front();
  EXPECT_EQ(v.dst, sc.dst);
  // Host-tagged traffic may legally deflect to the first peer; the valley
  // is the peer-tagged packet's *second* lateral move.
  EXPECT_EQ(v.rel, topo::Rel::Peer);
  ASSERT_GE(v.hops.size(), 2u);
  EXPECT_EQ(v.hops.front().from, sc.src_router);
  EXPECT_NE(v.to_string().find("valley"), std::string::npos);
}

// Customer/provider pair: AS 1 is the provider, AS 0 hosts `dst`, AS 1
// hosts the source. No alternatives programmed — plain BGP forwarding.
struct ChainScenario {
  testbed::Emulation em;
  dp::Addr dst = dp::kInvalidAddr;
  RouterId r0;  ///< AS 0's (destination) router
  RouterId r1;  ///< AS 1's (source) router
};

ChainScenario make_chain() {
  topo::AsGraph g(2);
  g.add_provider_customer(AsId(1), AsId(0));
  testbed::EmulationBuilder builder(g, std::vector<bool>(2, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  builder.attach_host(AsId(1));
  ChainScenario sc;
  sc.em = builder.finalize();
  sc.dst = sc.em.attachment(dst_host).addr;
  sc.r0 = sc.em.plan->routers_of(AsId(0)).front();
  sc.r1 = sc.em.plan->routers_of(AsId(1)).front();
  return sc;
}

TEST(Reachability, HealthyChainIsClean) {
  ChainScenario sc = make_chain();
  const auto check = verify::check_reachability(*sc.em.net);
  EXPECT_TRUE(check.clean);
  EXPECT_TRUE(check.blackholes.empty());
}

TEST(Reachability, EvictedEntryIsANoRouteBlackholeWithWitnessWalk) {
  ChainScenario sc = make_chain();
  // The destination router loses its FIB entry while its provider still
  // forwards to it — the line-4 drop the analysis must witness.
  ASSERT_TRUE(sc.em.net->router(sc.r0).fib().remove(sc.dst));
  const auto check = verify::check_reachability(*sc.em.net);
  ASSERT_FALSE(check.clean);
  ASSERT_EQ(check.blackholes.size(), 1u);
  const verify::Blackhole& bh = check.blackholes.front();
  EXPECT_EQ(bh.dst, sc.dst);
  EXPECT_EQ(bh.router, sc.r0);
  EXPECT_EQ(bh.kind, verify::BlackholeKind::NoRoute);
  // The witness walk arrives from the still-forwarding provider.
  ASSERT_FALSE(bh.hops.empty());
  EXPECT_EQ(bh.hops.front().from, sc.r1);
  EXPECT_EQ(bh.hops.back().to, sc.r0);
  EXPECT_NE(bh.to_string().find("no-route"), std::string::npos);
}

TEST(Reachability, DownedEgressWithoutAlternativeIsDefaultDown) {
  ChainScenario sc = make_chain();
  const auto* eg = sc.em.wirings[1].egress_to(AsId(0));
  ASSERT_NE(eg, nullptr);
  sc.em.net->set_port_up(eg->router, eg->port, false);
  const auto check = verify::check_reachability(*sc.em.net);
  ASSERT_FALSE(check.clean);
  ASSERT_EQ(check.blackholes.size(), 1u);
  const verify::Blackhole& bh = check.blackholes.front();
  EXPECT_EQ(bh.dst, sc.dst);
  EXPECT_EQ(bh.router, sc.r1);
  EXPECT_EQ(bh.kind, verify::BlackholeKind::DefaultDown);
  // The stranded state is itself the ingress: no walk to show.
  EXPECT_TRUE(bh.hops.empty());
  EXPECT_NE(bh.to_string().find("default-down"), std::string::npos);
}

}  // namespace
}  // namespace mifo
