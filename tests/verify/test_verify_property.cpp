// Property test: on randomly generated Internet-like topologies with a full
// MIFO deployment (every router enabled, daemons programming alt ports from
// the BGP RIB), the deflection graph is always acyclic and the deployment
// lints come back clean — for the daemon's greedy election and for any
// other RIB-backed alternative.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "testbed/emulation.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/lint.hpp"

namespace mifo {
namespace {

struct Deployment {
  testbed::Emulation em;
  topo::AsGraph g;
  std::vector<std::pair<dp::Addr, AsId>> owners;
};

Deployment deploy(std::uint64_t seed, std::size_t num_ases,
                  bool expand_tier1) {
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.num_tier1 = 5;
  gp.seed = seed;
  Deployment d;
  d.g = topo::generate_topology(gp);
  EXPECT_TRUE(topo::relationship_asymmetries(d.g).empty());

  std::vector<bool> expand(num_ases, false);
  if (expand_tier1) {
    for (std::size_t i = 0; i < num_ases; ++i) {
      expand[i] = d.g.info(AsId(static_cast<std::uint32_t>(i))).tier == 1;
    }
  }
  testbed::EmulationBuilder builder(d.g, std::move(expand));
  constexpr std::size_t kDests = 4;
  for (std::size_t i = 0; i < kDests; ++i) {
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(i * (num_ases - 1) / (kDests - 1))));
  }
  d.em = builder.finalize();

  dp::Network& net = *d.em.net;
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.0);
  for (const auto& att : d.em.hosts) d.owners.emplace_back(att.addr, att.as);
  return d;
}

class VerifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyProperty, FullDeploymentIsLoopFreeAndLintClean) {
  const std::uint64_t seed = GetParam();
  const std::size_t num_ases = seed % 2 == 0 ? 60 : 30;
  Deployment d = deploy(seed, num_ases, /*expand_tier1=*/seed == 4);
  dp::Network& net = *d.em.net;

  auto check = verify::check_loop_freedom(net);
  ASSERT_TRUE(check.loop_free)
      << "seed " << seed << ": " << check.cycles.front().to_string();
  EXPECT_EQ(check.stats.destinations, d.owners.size());
  EXPECT_GT(check.stats.edges, check.stats.states);

  const auto issues =
      verify::lint_deployment(net, d.g, d.em.daemons, d.owners);
  for (const auto& issue : issues) {
    ADD_FAILURE() << "seed " << seed << ": " << issue.to_string();
  }

  // Loop-freedom must not depend on which RIB alternative the daemon's
  // greedy election happened to pick: reprogram a random subset of
  // (collapsed-AS) alt ports to arbitrary RIB-backed choices and re-verify.
  Rng rng(seed * 1000 + 17);
  std::size_t mutated = 0;
  for (const auto& daemon : d.em.daemons) {
    const core::AsWiring& w = daemon->wiring();
    if (w.routers.size() != 1) continue;
    for (const core::PrefixRoutes& pr : daemon->prefixes()) {
      if (pr.alternatives.empty() || !rng.bernoulli(0.3)) continue;
      const AsId choice = pr.alternatives[rng.bounded(pr.alternatives.size())];
      const core::AsWiring::Egress* eg = w.egress_to(choice);
      ASSERT_NE(eg, nullptr);
      net.router(eg->router).fib().set_alt(pr.prefix, eg->port);
      ++mutated;
    }
  }
  ASSERT_GT(mutated, 0u) << "seed " << seed << ": mutation never triggered";
  check = verify::check_loop_freedom(net);
  EXPECT_TRUE(check.loop_free)
      << "seed " << seed << " after " << mutated << " RIB-backed mutations: "
      << check.cycles.front().to_string();
}

// Seeds 6–7 were added with the CSR route store: the daemons now program
// alternative ports out of RouteStore RIB rows, and the verifier must stay
// clean over that path too.
INSTANTIATE_TEST_SUITE_P(Seeds, VerifyProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

}  // namespace
}  // namespace mifo
