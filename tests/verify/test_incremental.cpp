// Differential property tests for the incremental verifier: after any
// random single-event mutation (alt reprogram, entry eviction, RIB
// withdrawal, config flip, link flap, daemon reconvergence tick), the
// merged incremental result must be verdict-, counterexample- and
// lint-identical to a from-scratch run of the full provers on the same
// state. The full provers are the oracle; the cache must never be able to
// serve a stale proof.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/change_log.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/incremental.hpp"
#include "verify/lint.hpp"
#include "verify/valley.hpp"

namespace mifo {
namespace {

struct Deployment {
  testbed::Emulation em;
  topo::AsGraph g;
  std::vector<std::pair<dp::Addr, AsId>> owners;
};

Deployment deploy(std::uint64_t seed, std::size_t num_ases) {
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.num_tier1 = 5;
  gp.seed = seed;
  Deployment d;
  d.g = topo::generate_topology(gp);
  testbed::EmulationBuilder builder(d.g, std::vector<bool>(num_ases, false));
  constexpr std::size_t kDests = 4;
  for (std::size_t i = 0; i < kDests; ++i) {
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(i * (num_ases - 1) / (kDests - 1))));
  }
  d.em = builder.finalize();
  dp::Network& net = *d.em.net;
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.0);
  for (const auto& att : d.em.hosts) d.owners.emplace_back(att.addr, att.as);
  return d;
}

std::vector<std::string> rendered(const auto& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.push_back(f.to_string());
  return out;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct FullRun {
  verify::LoopCheck loop;
  verify::ValleyCheck valley;
  std::vector<verify::LintIssue> lints;
};

FullRun full_run(const Deployment& d) {
  const dp::Network& net = *d.em.net;
  return {verify::check_loop_freedom(net), verify::check_valley_freedom(net),
          verify::lint_deployment(net, d.g, d.em.daemons, d.owners)};
}

// Element-identical, not just verdict-identical: cycles and valley
// violations are at most one per destination and both sides merge
// destination-ascending, so they compare as sequences; the full lint pass
// orders daemon-major while the incremental merge is destination-ascending,
// so lints compare as sorted multisets.
void expect_identical(const verify::IncrementalResult& inc, const FullRun& full,
                      const std::string& context) {
  EXPECT_EQ(inc.loop.loop_free, full.loop.loop_free) << context;
  EXPECT_EQ(rendered(inc.loop.cycles), rendered(full.loop.cycles)) << context;
  EXPECT_EQ(inc.valley.valley_free, full.valley.valley_free) << context;
  EXPECT_EQ(rendered(inc.valley.violations), rendered(full.valley.violations))
      << context;
  EXPECT_EQ(sorted(rendered(inc.lint)), sorted(rendered(full.lints)))
      << context;
}

TEST(Incremental, ColdPassProvesEverythingAndMatchesFull) {
  Deployment d = deploy(21, 30);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  verify::IncrementalVerifier inc;
  verify::ChangeSet cs;
  const auto cold = inc.check(net, d.g, d.em.daemons, d.owners, cs);
  EXPECT_EQ(cold.stats.destinations, d.owners.size());
  EXPECT_EQ(cold.stats.dirty_destinations, cold.stats.destinations);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_GT(cold.stats.states_explored, 0u);
  EXPECT_EQ(inc.cached_destinations(), d.owners.size());
  expect_identical(cold, full_run(d), "cold pass");

  // A warm pass with no changes at all is pure cache: zero exploration,
  // same merged result.
  const auto warm = inc.check(net, d.g, d.em.daemons, d.owners, cs);
  EXPECT_EQ(warm.stats.dirty_destinations, 0u);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.destinations);
  EXPECT_EQ(warm.stats.states_explored, 0u);
  expect_identical(warm, full_run(d), "warm no-op pass");
}

TEST(Incremental, PortFlipsAndNoOpTicksAreFree) {
  Deployment d = deploy(22, 30);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  verify::IncrementalVerifier inc;
  verify::ChangeSet cs;
  (void)inc.check(net, d.g, d.em.daemons, d.owners, cs);

  // The daemon rewrites the same alt ports every tick; value-change-only
  // hooks must keep the log empty so the snapshot is pure cache.
  for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.01);
  EXPECT_TRUE(log.empty()) << "steady-state tick dirtied the change log";

  // Link flaps without FIB reaction dirty nothing either: the deflection
  // graph never reads Port::up (only the blackhole analysis does, and it
  // is off by default).
  for (std::size_t as = 0; as < d.em.wirings.size(); as += 4) {
    for (const auto& eg : d.em.wirings[as].egresses) {
      net.set_port_up(eg.router, eg.port, false);
    }
  }
  EXPECT_FALSE(log.empty());
  cs.drain(log);
  const auto r = inc.check(net, d.g, d.em.daemons, d.owners, cs);
  cs.clear();
  EXPECT_EQ(r.stats.dirty_destinations, 0u);
  EXPECT_EQ(r.stats.cache_hits, r.stats.destinations);
  EXPECT_EQ(r.stats.states_explored, 0u);
  expect_identical(r, full_run(d), "after link flaps");
}

TEST(Incremental, VanishedDestinationIsDroppedFromTheMerge) {
  Deployment d = deploy(23, 20);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  verify::IncrementalVerifier inc;
  verify::ChangeSet cs;
  (void)inc.check(net, d.g, d.em.daemons, d.owners, cs);

  // Withdraw one prefix everywhere: RIB knowledge and every FIB entry go.
  const dp::Addr gone = d.owners.front().first;
  for (const auto& daemon : d.em.daemons) daemon->remove_prefix(net, gone);
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i))).fib().remove(gone);
  }
  cs.drain(log);
  const auto r = inc.check(net, d.g, d.em.daemons, d.owners, cs);
  cs.clear();
  EXPECT_EQ(r.stats.destinations, d.owners.size() - 1);
  EXPECT_EQ(inc.cached_destinations(), d.owners.size() - 1);
  expect_identical(r, full_run(d), "after full withdrawal");
}

class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The satellite's core claim: a long random single-event mutation sequence
// never lets the incremental verdict drift from the from-scratch oracle.
TEST_P(IncrementalProperty, RandomMutationSequenceNeverDiverges) {
  const std::uint64_t seed = GetParam();
  Deployment d = deploy(seed, seed % 2 == 0 ? 40 : 24);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  verify::IncrementalVerifier inc;
  verify::ChangeSet cs;
  (void)inc.check(net, d.g, d.em.daemons, d.owners, cs);

  Rng rng(seed * 7919 + 3);
  const std::size_t num_ases = d.em.wirings.size();
  std::size_t mutations = 0;
  for (int step = 0; step < 30; ++step) {
    const AsId as(static_cast<std::uint32_t>(rng.bounded(num_ases)));
    const auto& w = d.em.wirings[as.value()];
    const dp::Addr dst = d.owners[rng.bounded(d.owners.size())].first;
    switch (rng.bounded(6)) {
      case 0: {  // arbitrary alt reprogram — may very well create a cycle
        if (w.egresses.empty()) continue;
        const auto& eg = w.egresses[rng.bounded(w.egresses.size())];
        if (!net.router(eg.router).fib().contains(dst)) continue;
        net.router(eg.router).fib().set_alt(dst, eg.port);
        break;
      }
      case 1: {  // alt eviction
        if (w.egresses.empty()) continue;
        const RouterId r = w.egresses.front().router;
        if (!net.router(r).fib().contains(dst)) continue;
        net.router(r).fib().clear_alt(dst);
        break;
      }
      case 2: {  // whole-entry eviction (stranding upstreams is fine here —
                 // blackhole analysis is off, loop/valley/lint must agree)
        if (w.egresses.empty()) continue;
        const RouterId r = w.egresses.front().router;
        if (!net.router(r).fib().remove(dst)) continue;
        break;
      }
      case 3:  // RIB withdrawal at one daemon (lints react to RIB state)
        d.em.daemons[as.value()]->remove_prefix(net, dst);
        break;
      case 4: {  // config flip — bypasses hooks, mutator records it
        if (w.egresses.empty()) continue;
        const RouterId r = w.egresses.front().router;
        net.router(r).config().enforce_tag_check =
            !net.router(r).config().enforce_tag_check;
        log.note_config(r);
        break;
      }
      case 5: {  // link flap
        if (w.egresses.empty()) continue;
        const auto& eg = w.egresses[rng.bounded(w.egresses.size())];
        net.set_port_up(eg.router, eg.port, rng.bernoulli(0.5));
        break;
      }
    }
    // Occasionally let the control plane reconverge, like the chaos
    // engine's reconv delay does; the daemons then rewrite only what the
    // mutations actually changed.
    if (rng.bernoulli(0.25)) {
      for (const auto& daemon : d.em.daemons) {
        daemon->tick(net, 0.02 * (step + 1));
      }
    }
    ++mutations;

    cs.drain(log);
    const auto r = inc.check(net, d.g, d.em.daemons, d.owners, cs);
    cs.clear();
    EXPECT_EQ(r.stats.dirty_destinations + r.stats.cache_hits,
              r.stats.destinations);
    expect_identical(r, full_run(d),
                     "seed " + std::to_string(seed) + " step " +
                         std::to_string(step));
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
  EXPECT_GT(mutations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mifo
