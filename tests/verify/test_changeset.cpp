// Unit tests of the change-recording layer that feeds incremental
// verification: the dp::ChangeLog hooks in Fib/Network/MifoDaemon (which
// must record value changes only — the daemon rewrites identical alt ports
// every tick), and the verify::ChangeSet dirty mapping, including the
// port-flip invariance the whole design rests on: Port::up never reaches
// the deflection graph, so link faults alone dirty nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dataplane/change_log.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/valley.hpp"

namespace mifo {
namespace {

struct Deployment {
  testbed::Emulation em;
  topo::AsGraph g;
};

Deployment deploy(std::uint64_t seed, std::size_t num_ases) {
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.num_tier1 = 5;
  gp.seed = seed;
  Deployment d;
  d.g = topo::generate_topology(gp);
  testbed::EmulationBuilder builder(d.g, std::vector<bool>(num_ases, false));
  constexpr std::size_t kDests = 4;
  for (std::size_t i = 0; i < kDests; ++i) {
    builder.attach_host(
        AsId(static_cast<std::uint32_t>(i * (num_ases - 1) / (kDests - 1))));
  }
  d.em = builder.finalize();
  dp::Network& net = *d.em.net;
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.0);
  return d;
}

TEST(ChangeLog, FibHooksRecordOnlyValueChanges) {
  Deployment d = deploy(3, 20);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  const dp::Addr dst = d.em.hosts.front().addr;
  RouterId r = RouterId::invalid();
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    const RouterId cand(static_cast<std::uint32_t>(i));
    if (net.router(cand).fib().contains(dst)) {
      r = cand;
      break;
    }
  }
  ASSERT_TRUE(r.valid());
  dp::Fib& fib = net.router(r).fib();
  const dp::FibEntry before = *fib.lookup(dst);

  // Identical rewrites — the daemon does this every tick — record nothing.
  fib.set_route(dst, before.out_port);
  fib.set_alt(dst, before.alt_port);
  if (!before.alt_port.valid()) fib.clear_alt(dst);
  EXPECT_TRUE(log.empty()) << "no-op writes must not dirty anything";

  // Value changes record exactly once each. Pick an alt port id distinct
  // from both current ports (the Fib stores ids blindly, no port lookup).
  const PortId other(std::max(before.out_port.value(),
                              before.alt_port.valid() ? before.alt_port.value()
                                                      : 0) +
                     1);
  fib.set_alt(dst, other);
  EXPECT_EQ(log.fib.size(), 1u);
  fib.set_alt(dst, other);  // same value again
  EXPECT_EQ(log.fib.size(), 1u);
  fib.clear_alt(dst);
  EXPECT_EQ(log.fib.size(), 2u);
  fib.clear_alt(dst);  // already cleared
  EXPECT_EQ(log.fib.size(), 2u);
  EXPECT_TRUE(fib.remove(dst));
  EXPECT_EQ(log.fib.size(), 3u);
  EXPECT_FALSE(fib.remove(dst));
  EXPECT_EQ(log.fib.size(), 3u);
  for (const auto& fc : log.fib) {
    EXPECT_EQ(fc.router, r);
    EXPECT_EQ(fc.dst, dst);
  }
}

TEST(ChangeLog, PortDaemonAndConfigRecords) {
  Deployment d = deploy(5, 20);
  dp::Network& net = *d.em.net;
  dp::ChangeLog log;
  net.attach_change_log(&log);

  const auto& eg = d.em.wirings[1].egresses.front();
  net.set_port_up(eg.router, eg.port, false);
  ASSERT_EQ(log.ports.size(), 1u);
  EXPECT_EQ(log.ports.front().router, eg.router);
  EXPECT_EQ(log.ports.front().port, eg.port);
  net.set_port_up(eg.router, eg.port, false);  // already down: early-out
  EXPECT_EQ(log.ports.size(), 1u);
  net.set_port_up(eg.router, eg.port, true);
  EXPECT_EQ(log.ports.size(), 2u);

  const dp::Addr prefix = d.em.hosts.front().addr;
  d.em.daemons[1]->remove_prefix(net, prefix);
  ASSERT_GE(log.daemons.size(), 1u);
  EXPECT_EQ(log.daemons.front().as, AsId(1));
  EXPECT_EQ(log.daemons.front().prefix, prefix);
}

TEST(ChangeSet, DirtyMappingPerRecordKind) {
  Deployment d = deploy(7, 20);
  dp::Network& net = *d.em.net;
  const auto routers = net.routers();
  const dp::Addr dst0 = d.em.hosts[0].addr;
  const dp::Addr dst1 = d.em.hosts[1].addr;

  verify::ChangeSet cs;
  EXPECT_TRUE(cs.empty());
  cs.note_fib(RouterId(2), dst0);
  EXPECT_EQ(cs.dirty_destinations(routers),
            std::vector<dp::Addr>{dst0});

  cs.clear();
  cs.note_daemon(AsId(3), dst1);
  EXPECT_EQ(cs.dirty_destinations(routers),
            std::vector<dp::Addr>{dst1});

  // A config change dirties every destination in that router's FIB.
  cs.clear();
  cs.note_config(RouterId(0));
  std::vector<dp::Addr> expect;
  for (const auto& [fib_dst, fe] : net.router(RouterId(0)).fib()) {
    expect.push_back(fib_dst);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(cs.dirty_destinations(routers), expect);

  // Port changes dirty nothing for the graph proofs, only the
  // port-sensitive blackhole side.
  cs.clear();
  cs.note_port(RouterId(0), PortId(0));
  EXPECT_TRUE(cs.dirty_destinations(routers).empty());
  EXPECT_EQ(cs.port_dirty_destinations(routers), expect);

  EXPECT_EQ(cs.to_string(), "fib=0 ports=1 configs=0 daemons=0 routing=0");

  // A routing-plane change (delta route recompute) dirties its prefix for
  // the graph proofs even when no FIB row moved.
  cs.clear();
  cs.note_routing(dst1);
  EXPECT_FALSE(cs.empty());
  EXPECT_EQ(cs.dirty_destinations(routers), std::vector<dp::Addr>{dst1});
  EXPECT_TRUE(cs.port_dirty_destinations(routers).empty());

  // ...and dedups with the FIB-derived dirty set.
  cs.note_fib(RouterId(2), dst1);
  EXPECT_EQ(cs.dirty_destinations(routers), std::vector<dp::Addr>{dst1});
  EXPECT_EQ(cs.to_string(), "fib=1 ports=0 configs=0 daemons=0 routing=1");
  cs.clear();
  EXPECT_TRUE(cs.empty());
}

TEST(ChangeSet, DrainMovesAndClearsTheLog) {
  dp::ChangeLog log;
  log.note_fib(RouterId(1), 10);
  log.note_port(RouterId(2), PortId(0));
  log.note_config(RouterId(3));
  log.note_daemon(AsId(4), 11);
  EXPECT_EQ(log.size(), 4u);

  verify::ChangeSet cs;
  cs.drain(log);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs.fib_changes(), 1u);
  EXPECT_EQ(cs.port_changes(), 1u);
  EXPECT_EQ(cs.config_changes(), 1u);
  EXPECT_EQ(cs.daemon_changes(), 1u);

  // Draining again accumulates rather than replacing.
  log.note_fib(RouterId(5), 12);
  cs.drain(log);
  EXPECT_EQ(cs.fib_changes(), 2u);
  cs.clear();
  EXPECT_TRUE(cs.empty());
}

// The soundness cornerstone: flipping link state — with no FIB or config
// reaction — leaves every loop and valley verdict bit-identical, because
// the deflection graph never reads Port::up.
TEST(ChangeSet, PortFlipsPreserveLoopAndValleyVerdicts) {
  Deployment d = deploy(11, 30);
  dp::Network& net = *d.em.net;

  const auto loop_before = verify::check_loop_freedom(net);
  const auto valley_before = verify::check_valley_freedom(net);

  std::size_t downed = 0;
  for (std::size_t as = 0; as < d.em.wirings.size(); as += 3) {
    for (const auto& eg : d.em.wirings[as].egresses) {
      net.set_port_up(eg.router, eg.port, false);
      ++downed;
    }
  }
  ASSERT_GT(downed, 0u);

  const auto loop_after = verify::check_loop_freedom(net);
  const auto valley_after = verify::check_valley_freedom(net);
  EXPECT_EQ(loop_before.loop_free, loop_after.loop_free);
  EXPECT_EQ(loop_before.cycles.size(), loop_after.cycles.size());
  EXPECT_EQ(loop_before.stats.states, loop_after.stats.states);
  EXPECT_EQ(loop_before.stats.edges, loop_after.stats.edges);
  EXPECT_EQ(valley_before.valley_free, valley_after.valley_free);
  EXPECT_EQ(valley_before.stats.states, valley_after.stats.states);
}

}  // namespace
}  // namespace mifo
