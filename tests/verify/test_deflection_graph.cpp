// Unit tests of the static verifier: the deflection-graph loop-freedom
// check and the FIB/RIB consistency lints, on hand-built Fig. 2 scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testbed/emulation.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/lint.hpp"

namespace mifo {
namespace {

// Fig. 2(a) shape: ASes 1,2,3 mutually peer, AS 0 is everyone's customer,
// alt ports wired clockwise. Returns the emulation with dst attached at
// AS 0 and the ring configured; `enforce` controls the Tag-Check knob.
struct RingScenario {
  testbed::Emulation em;
  dp::Addr dst = dp::kInvalidAddr;
  std::set<std::uint32_t> ring_routers;
};

RingScenario make_ring(bool enforce_tag_check) {
  topo::AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));

  testbed::EmulationBuilder builder(g, std::vector<bool>(4, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  RingScenario sc;
  sc.em = builder.finalize();
  sc.dst = sc.em.attachment(dst_host).addr;

  const AsId ring[] = {AsId(1), AsId(2), AsId(3)};
  for (int i = 0; i < 3; ++i) {
    const AsId as = ring[i];
    const AsId next = ring[(i + 1) % 3];
    const RouterId r = sc.em.plan->routers_of(as).front();
    dp::Network& net = *sc.em.net;
    net.router(r).config().mifo_enabled = true;
    net.router(r).config().enforce_tag_check = enforce_tag_check;
    const auto* eg = sc.em.wirings[as.value()].egress_to(next);
    EXPECT_NE(eg, nullptr);
    net.router(r).fib().set_alt(sc.dst, eg->port);
    sc.ring_routers.insert(r.value());
  }
  return sc;
}

TEST(DeflectionGraph, Fig2aRingIsLoopFreeUnderTagCheck) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/true);
  const auto check = verify::check_loop_freedom(*sc.em.net);
  EXPECT_TRUE(check.loop_free);
  EXPECT_TRUE(check.cycles.empty());
  EXPECT_EQ(check.stats.destinations, 1u);
  EXPECT_GT(check.stats.states, 0u);
  EXPECT_GT(check.stats.edges, 0u);
}

TEST(DeflectionGraph, Fig2aRingCyclesWithoutTagCheck) {
  RingScenario sc = make_ring(/*enforce_tag_check=*/false);
  const auto check = verify::check_loop_freedom(*sc.em.net);
  ASSERT_FALSE(check.loop_free);
  ASSERT_EQ(check.cycles.size(), 1u);
  const verify::Cycle& cycle = check.cycles.front();
  EXPECT_EQ(cycle.dst, sc.dst);
  // The counterexample is exactly the clockwise peering ring, every hop a
  // (no-longer-gated) eBGP deflection.
  std::set<std::uint32_t> seen;
  for (const verify::Hop& h : cycle.hops) {
    EXPECT_EQ(h.kind, verify::HopKind::AltEbgp);
    seen.insert(h.from.value());
  }
  EXPECT_EQ(seen, sc.ring_routers);
  EXPECT_EQ(cycle.hops.front().from, cycle.hops.back().to);
  EXPECT_NE(cycle.to_string().find("cycle:"), std::string::npos);
}

// Fig. 2(b) shape: AS X has two border routers; the alternative hands the
// packet to the iBGP peer, whose line-11 return detection must keep the
// deflection graph acyclic.
struct IbgpScenario {
  testbed::Emulation em;
  dp::Addr dst = dp::kInvalidAddr;
  RouterId r1;  ///< X's border towards the default next hop
  RouterId r2;  ///< X's border towards the alternative
};

IbgpScenario make_ibgp() {
  topo::AsGraph g(4);
  const AsId x(0), y(1), z(2), d(3);
  g.add_peering(x, y);
  g.add_peering(x, z);
  g.add_provider_customer(y, d);
  g.add_provider_customer(z, d);

  std::vector<bool> expand(4, false);
  expand[x.value()] = true;
  testbed::EmulationBuilder builder(g, expand);
  builder.attach_host(x);
  const HostId dst_host = builder.attach_host(d);
  IbgpScenario sc;
  sc.em = builder.finalize();
  sc.dst = sc.em.attachment(dst_host).addr;
  sc.r1 = sc.em.plan->border_towards(x, y);
  sc.r2 = sc.em.plan->border_towards(x, z);
  dp::Network& net = *sc.em.net;
  for (const RouterId r : sc.em.plan->routers_of(x)) {
    net.router(r).config().mifo_enabled = true;
  }
  const auto& wx = sc.em.wirings[x.value()];
  net.router(sc.r1).fib().set_alt(sc.dst, wx.intra_port(sc.r1, sc.r2));
  net.router(sc.r2).fib().set_alt(sc.dst, wx.egress_to(z)->port);
  return sc;
}

TEST(DeflectionGraph, Fig2bReturnDetectionKeepsIbgpHandoffAcyclic) {
  IbgpScenario sc = make_ibgp();
  const auto check = verify::check_loop_freedom(*sc.em.net);
  EXPECT_TRUE(check.loop_free) << check.cycles.front().to_string();
}

TEST(DeflectionGraph, Fig2bAltPointingBackAtSenderCycles) {
  IbgpScenario sc = make_ibgp();
  // Corrupt r2: its alternative now hands the packet straight back to r1.
  // r2 detects the return (sender == default next hop) and is forced onto
  // this alternative — an iBGP ping-pong the verifier must surface.
  const auto& wx = sc.em.wirings[0];
  sc.em.net->router(sc.r2).fib().set_alt(sc.dst,
                                         wx.intra_port(sc.r2, sc.r1));
  const auto check = verify::check_loop_freedom(*sc.em.net);
  ASSERT_FALSE(check.loop_free);
  const verify::Cycle& cycle = check.cycles.front();
  std::set<std::uint32_t> seen;
  bool saw_ibgp_hop = false;
  for (const verify::Hop& h : cycle.hops) {
    seen.insert(h.from.value());
    saw_ibgp_hop |= h.kind == verify::HopKind::AltIbgp;
  }
  EXPECT_TRUE(saw_ibgp_hop);
  EXPECT_EQ(seen, (std::set<std::uint32_t>{sc.r1.value(), sc.r2.value()}));
}

// An alternative the RIB never advertised can loop even with the Tag-Check
// fully enforced: deflect to a customer whose own default climbs straight
// back through us. Eq. 3 admits every customer-bound deflection; it is the
// Gao–Rexford export rule (no provider route is exported upward) that rules
// this state out — which is precisely why alt_port entries must be
// RIB-backed, and why the verifier checks installed state, not the paper's
// assumptions.
TEST(DeflectionGraph, RibUnbackedCustomerAltCycles) {
  topo::AsGraph g(3);
  g.add_provider_customer(AsId(1), AsId(0));  // dst below AS1
  g.add_provider_customer(AsId(1), AsId(2));  // AS2: stub customer of AS1
  testbed::EmulationBuilder builder(g, std::vector<bool>(3, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  auto em = builder.finalize();
  const dp::Addr dst = em.attachment(dst_host).addr;
  dp::Network& net = *em.net;

  const RouterId r1 = em.plan->routers_of(AsId(1)).front();
  const RouterId r2 = em.plan->routers_of(AsId(2)).front();
  net.router(r1).config().mifo_enabled = true;  // Tag-Check stays ON
  const auto* eg = em.wirings[1].egress_to(AsId(2));
  ASSERT_NE(eg, nullptr);
  net.router(r1).fib().set_alt(dst, eg->port);

  const auto check = verify::check_loop_freedom(*em.net);
  ASSERT_FALSE(check.loop_free);
  std::set<std::uint32_t> seen;
  for (const verify::Hop& h : check.cycles.front().hops) {
    seen.insert(h.from.value());
  }
  EXPECT_EQ(seen, (std::set<std::uint32_t>{r1.value(), r2.value()}));

  // The lints pinpoint the root cause: AS2 exports nothing for this prefix.
  std::vector<std::pair<dp::Addr, AsId>> owners{{dst, AsId(0)}};
  const auto issues = verify::lint_deployment(net, g, em.daemons, owners);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& i) {
    return i.kind == verify::LintKind::AltMissingFromRib;
  }));
}

TEST(DeflectionGraph, FibDestinationsCollectsHostPrefixes) {
  IbgpScenario sc = make_ibgp();
  const auto dests = verify::fib_destinations(*sc.em.net);
  // Two attached hosts -> two prefixes, ascending.
  ASSERT_EQ(dests.size(), 2u);
  EXPECT_TRUE(std::is_sorted(dests.begin(), dests.end()));
  EXPECT_TRUE(std::find(dests.begin(), dests.end(), sc.dst) != dests.end());
}

TEST(Lint, DaemonProgrammedDeploymentIsClean) {
  IbgpScenario sc = make_ibgp();
  dp::Network& net = *sc.em.net;
  // Let the daemons program alt state the production way.
  for (const auto& daemon : sc.em.daemons) daemon->tick(net, 0.0);
  std::vector<std::pair<dp::Addr, AsId>> owners;
  for (const auto& att : sc.em.hosts) owners.emplace_back(att.addr, att.as);
  topo::AsGraph g(4);  // rebuild the same graph for the lint input
  g.add_peering(AsId(0), AsId(1));
  g.add_peering(AsId(0), AsId(2));
  g.add_provider_customer(AsId(1), AsId(3));
  g.add_provider_customer(AsId(2), AsId(3));
  EXPECT_TRUE(verify::lint_topology(g).empty());
  const auto issues = verify::lint_deployment(net, g, sc.em.daemons, owners);
  for (const auto& issue : issues) ADD_FAILURE() << issue.to_string();
}

TEST(Lint, AltEqualToDefaultPortIsFlagged) {
  IbgpScenario sc = make_ibgp();
  dp::Network& net = *sc.em.net;
  const auto fe = net.router(sc.r1).fib().lookup(sc.dst);
  ASSERT_TRUE(fe.has_value());
  net.router(sc.r1).fib().set_alt(sc.dst, fe->out_port);
  topo::AsGraph g(4);
  g.add_peering(AsId(0), AsId(1));
  g.add_peering(AsId(0), AsId(2));
  g.add_provider_customer(AsId(1), AsId(3));
  g.add_provider_customer(AsId(2), AsId(3));
  std::vector<std::pair<dp::Addr, AsId>> owners{{sc.dst, AsId(3)}};
  const auto issues = verify::lint_deployment(net, g, sc.em.daemons, owners);
  EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [&](const auto& i) {
    return i.kind == verify::LintKind::AltEqualsDefault &&
           i.router == sc.r1 && i.dst == sc.dst;
  }));
}

TEST(Lint, CorruptedDaemonRibKnowledgeIsAnExportViolation) {
  // AS2 and AS3 are both customers of AS1; AS2—AS3 peer. AS3's best route
  // towards AS0 (below AS1) is a provider route, which Gao–Rexford never
  // exports across a peering — a daemon claiming otherwise is corrupt.
  topo::AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(1), AsId(2));
  g.add_provider_customer(AsId(1), AsId(3));
  g.add_peering(AsId(2), AsId(3));
  testbed::EmulationBuilder builder(g, std::vector<bool>(4, false));
  const HostId dst_host = builder.attach_host(AsId(0));
  auto em = builder.finalize();
  const dp::Addr dst = em.attachment(dst_host).addr;

  core::PrefixRoutes corrupt;
  corrupt.prefix = dst;
  corrupt.default_neighbor = AsId(1);
  corrupt.alternatives = {AsId(3)};  // AS3 would never export this route
  std::vector<std::unique_ptr<core::MifoDaemon>> daemons;
  daemons.push_back(std::make_unique<core::MifoDaemon>(
      em.daemons[2]->wiring(), std::vector<core::PrefixRoutes>{corrupt}));

  std::vector<std::pair<dp::Addr, AsId>> owners{{dst, AsId(0)}};
  const auto issues = verify::lint_deployment(*em.net, g, daemons, owners);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().kind, verify::LintKind::ExportViolation);
  EXPECT_EQ(issues.front().as, AsId(2));
}

}  // namespace
}  // namespace mifo
