#include "bgpd/speaker.hpp"

#include <gtest/gtest.h>

namespace mifo::bgpd {
namespace {

using topo::AsGraph;

// 0 provides 1; 1 peers 2.
AsGraph small() {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_peering(AsId(1), AsId(2));
  return g;
}

TEST(Speaker, OriginateAnnouncesToAllNeighbors) {
  const AsGraph g = small();
  Speaker s(AsId(1), g);
  const auto out = s.originate();
  ASSERT_EQ(out.size(), 2u);  // provider 0 and peer 2
  for (const auto& o : out) {
    EXPECT_FALSE(o.msg.withdraw);
    EXPECT_EQ(o.msg.dest, AsId(1));
    EXPECT_EQ(o.msg.as_path, std::vector<AsId>{AsId(1)});
  }
  EXPECT_EQ(s.best(AsId(1)).cls, bgp::RouteClass::Self);
}

TEST(Speaker, ReceiveInstallsAndReExportsPerPolicy) {
  const AsGraph g = small();
  Speaker s(AsId(1), g);
  // Peer 2 announces its own prefix.
  UpdateMsg m;
  m.dest = AsId(2);
  m.as_path = {AsId(2)};
  const auto out = s.receive(m, AsId(2));
  // Peer routes are exported only to customers; AS1 has none, and AS0 is
  // its provider -> nothing to send.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(s.best(AsId(2)).cls, bgp::RouteClass::Peer);
  EXPECT_EQ(s.best_path(AsId(2)), (std::vector<AsId>{AsId(1), AsId(2)}));
}

TEST(Speaker, CustomerRouteReExportedEverywhere) {
  const AsGraph g = small();
  Speaker s(AsId(0), g);  // provider of 1
  UpdateMsg m;
  m.dest = AsId(1);
  m.as_path = {AsId(1)};
  const auto out = s.receive(m, AsId(1));
  // Customer route: export to everyone — AS0's only neighbor is 1 itself.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, AsId(1));
  EXPECT_EQ(out[0].msg.as_path,
            (std::vector<AsId>{AsId(0), AsId(1)}));
}

TEST(Speaker, LoopingPathRejected) {
  const AsGraph g = small();
  Speaker s(AsId(1), g);
  UpdateMsg m;
  m.dest = AsId(9);  // some remote prefix
  m.as_path = {AsId(2), AsId(1), AsId(9)};  // passes through ourselves!
  const auto out = s.receive(m, AsId(2));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(s.loops_rejected, 1u);
  EXPECT_FALSE(s.best(AsId(9)).valid());
}

TEST(Speaker, WithdrawRemovesRouteAndPropagates) {
  const AsGraph g = small();
  Speaker s(AsId(0), g);
  UpdateMsg ann;
  ann.dest = AsId(1);
  ann.as_path = {AsId(1)};
  (void)s.receive(ann, AsId(1));
  ASSERT_TRUE(s.best(AsId(1)).valid());

  UpdateMsg wd;
  wd.dest = AsId(1);
  wd.withdraw = true;
  const auto out = s.receive(wd, AsId(1));
  EXPECT_FALSE(s.best(AsId(1)).valid());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].msg.withdraw);
}

TEST(Speaker, BetterRouteReplacesAndWorseIsIgnored) {
  // 1 has two providers 0 and 2 in a diamond towards 3.
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(2), AsId(1));
  g.add_provider_customer(AsId(0), AsId(3));
  g.add_provider_customer(AsId(2), AsId(3));
  Speaker s(AsId(1), g);
  UpdateMsg via0;
  via0.dest = AsId(3);
  via0.as_path = {AsId(0), AsId(3)};
  (void)s.receive(via0, AsId(0));
  EXPECT_EQ(s.best(AsId(3)).next_hop, AsId(0));
  // Equal-length offer from higher-id neighbor loses the tie-break.
  UpdateMsg via2;
  via2.dest = AsId(3);
  via2.as_path = {AsId(2), AsId(3)};
  const auto out = s.receive(via2, AsId(2));
  EXPECT_EQ(s.best(AsId(3)).next_hop, AsId(0));
  EXPECT_TRUE(out.empty());  // best unchanged -> silent
  // Both alternatives visible in the Adj-RIB-In (MIFO's raw material).
  EXPECT_EQ(s.rib_in(AsId(3)).size(), 2u);
}

TEST(Speaker, NoDuplicateAnnouncementForSamePath) {
  const AsGraph g = small();
  Speaker s(AsId(0), g);
  UpdateMsg m;
  m.dest = AsId(1);
  m.as_path = {AsId(1)};
  EXPECT_FALSE(s.receive(m, AsId(1)).empty());
  // Identical re-announcement: decision unchanged, nothing re-sent.
  EXPECT_TRUE(s.receive(m, AsId(1)).empty());
}

}  // namespace
}  // namespace mifo::bgpd
