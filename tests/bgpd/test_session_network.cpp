// The protocol engine must converge to exactly the analytic Gao–Rexford
// fixpoint of src/bgp/ — the strongest cross-validation in the repo: two
// completely different derivations (message passing vs three BFS phases) of
// the same converged Internet.

#include <gtest/gtest.h>

#include "bgp/routing.hpp"
#include "bgpd/session_network.hpp"
#include "topo/generator.hpp"

namespace mifo::bgpd {
namespace {

using topo::AsGraph;

TEST(SessionNetwork, TinyTriangleConverges) {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_peering(AsId(1), AsId(2));
  SessionNetwork net(g);
  net.originate_all();
  const std::size_t msgs = net.run_to_convergence();
  EXPECT_GT(msgs, 0u);
  EXPECT_TRUE(net.converged());
  // 0 reaches 1 (customer) and 2 (via 1? no: 1's best for 2 is a peer
  // route, not exported to provider 0).
  EXPECT_TRUE(net.speaker(AsId(0)).best(AsId(1)).valid());
  EXPECT_FALSE(net.speaker(AsId(0)).best(AsId(2)).valid());
  // 2 reaches 0 via its peer's customer? No — peer 1 exports only customer
  // routes, and 0 is 1's provider. Unreachable both ways.
  EXPECT_FALSE(net.speaker(AsId(2)).best(AsId(0)).valid());
  // 2 reaches 1 directly.
  EXPECT_EQ(net.speaker(AsId(2)).best(AsId(1)).cls, bgp::RouteClass::Peer);
}

class ConvergenceCrossValidation
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ConvergenceCrossValidation, ProtocolMatchesAnalyticFixpoint) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  const AsGraph g = topo::generate_topology(p);

  SessionNetwork net(g);
  net.originate_all();
  net.run_to_convergence();

  for (std::uint32_t d = 0; d < g.num_ases(); d += 5) {
    const auto analytic = bgp::compute_routes(g, AsId(d));
    for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
      if (s == d) continue;
      const bgp::Route a = analytic.best(AsId(s));
      const bgp::Route b = net.speaker(AsId(s)).best(AsId(d));
      ASSERT_EQ(a.valid(), b.valid()) << "dest " << d << " as " << s;
      if (a.valid()) {
        ASSERT_EQ(a.cls, b.cls) << "dest " << d << " as " << s;
        ASSERT_EQ(a.path_len, b.path_len) << "dest " << d << " as " << s;
        ASSERT_EQ(a.next_hop, b.next_hop) << "dest " << d << " as " << s;
        // The protocol's full path matches the analytic chain.
        ASSERT_EQ(net.speaker(AsId(s)).best_path(AsId(d)),
                  bgp::as_path(g, analytic, AsId(s)));
      }
    }
  }
}

TEST_P(ConvergenceCrossValidation, RibInMatchesAnalyticRibView) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed + 500;
  const AsGraph g = topo::generate_topology(p);
  SessionNetwork net(g);
  net.originate_all();
  net.run_to_convergence();

  for (std::uint32_t d = 0; d < g.num_ases(); d += 17) {
    const auto analytic = bgp::compute_routes(g, AsId(d));
    for (std::uint32_t s = 0; s < g.num_ases(); s += 7) {
      if (s == d) continue;
      const auto protocol_rib = net.speaker(AsId(s)).rib_in(AsId(d));
      const auto analytic_rib = bgp::rib_of(g, analytic, AsId(s));
      ASSERT_EQ(protocol_rib.size(), analytic_rib.size())
          << "dest " << d << " as " << s;
      for (std::size_t i = 0; i < protocol_rib.size(); ++i) {
        ASSERT_EQ(protocol_rib[i].as_route(), analytic_rib[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ConvergenceCrossValidation,
    ::testing::Combine(::testing::Values<std::size_t>(25, 60, 120),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(SessionNetwork, WithdrawalDrainsTheRoute) {
  topo::GeneratorParams p;
  p.num_ases = 80;
  p.seed = 4;
  const AsGraph g = topo::generate_topology(p);
  SessionNetwork net(g);
  net.originate_all();
  net.run_to_convergence();

  const AsId victim(42);
  std::size_t holders_before = 0;
  for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
    if (s != victim.value() && net.speaker(AsId(s)).best(victim).valid()) {
      ++holders_before;
    }
  }
  ASSERT_GT(holders_before, 0u);

  net.withdraw(victim);
  net.run_to_convergence();
  for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
    if (s == victim.value()) continue;
    EXPECT_FALSE(net.speaker(AsId(s)).best(victim).valid()) << "AS " << s;
  }
}

TEST(SessionNetwork, ReOriginationAfterWithdrawalRestoresRoutes) {
  topo::GeneratorParams p;
  p.num_ases = 60;
  p.seed = 9;
  const AsGraph g = topo::generate_topology(p);
  SessionNetwork net(g);
  net.originate_all();
  net.run_to_convergence();
  const AsId victim(17);
  net.withdraw(victim);
  net.run_to_convergence();
  net.originate(victim);
  net.run_to_convergence();

  const auto analytic = bgp::compute_routes(g, victim);
  for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
    if (s == victim.value()) continue;
    const bgp::Route a = analytic.best(AsId(s));
    const bgp::Route b = net.speaker(AsId(s)).best(victim);
    ASSERT_EQ(a.valid(), b.valid()) << "AS " << s;
    if (a.valid()) {
      ASSERT_EQ(a.next_hop, b.next_hop) << "AS " << s;
      ASSERT_EQ(a.path_len, b.path_len) << "AS " << s;
    }
  }
}

TEST(SessionNetwork, MessageComplexityIsSane) {
  topo::GeneratorParams p;
  p.num_ases = 100;
  p.seed = 2;
  const AsGraph g = topo::generate_topology(p);
  SessionNetwork net(g);
  net.originate_all();
  const std::size_t msgs = net.run_to_convergence();
  // Rough envelope: every prefix crosses each adjacency a small constant
  // number of times under deterministic FIFO processing.
  EXPECT_LT(msgs, 40 * g.num_ases() * g.num_adjacencies());
  EXPECT_GT(msgs, g.num_adjacencies());
}

}  // namespace
}  // namespace mifo::bgpd
