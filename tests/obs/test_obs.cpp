// Observability subsystem tests: metrics registry (sharded accumulation,
// snapshot merging, thread safety under parallel_for), the forwarding-event
// tracer (ring bounds, per-flow filter), the JSON builder and the artifact
// writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/artifact.hpp"
#include "obs/exposition.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mifo::obs {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(Registry, CounterAccumulatesAcrossShards) {
  Registry reg;
  const MetricId c = reg.counter("test.count");
  Registry::Shard& s1 = reg.create_shard();
  Registry::Shard& s2 = reg.create_shard();
  s1.add(c);
  s1.add(c, 2.0);
  s2.add(c, 4.0);
  const Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("test.count", -1.0), 7.0);
}

TEST(Registry, SameNameAndLabelsShareAnId) {
  Registry reg;
  const MetricId a = reg.counter("x", "k=1");
  const MetricId b = reg.counter("x", "k=1");
  const MetricId c = reg.counter("x", "k=2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(Registry, LabelsKeepFamiliesApartInSnapshots) {
  Registry reg;
  const MetricId a = reg.counter("dp.drops", "reason=valley");
  const MetricId b = reg.counter("dp.drops", "reason=ttl");
  Registry::Shard& s = reg.create_shard();
  s.add(a, 3.0);
  s.add(b, 5.0);
  const Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("dp.drops", -1.0, "reason=valley"), 3.0);
  EXPECT_DOUBLE_EQ(snap.value_or("dp.drops", -1.0, "reason=ttl"), 5.0);
  EXPECT_EQ(snap.find("dp.drops", "reason=nope"), nullptr);
}

TEST(Registry, GaugeSetAndSnapshot) {
  Registry reg;
  const MetricId g = reg.gauge("test.level");
  Registry::Shard& s = reg.create_shard();
  s.set(g, 2.5);
  s.set(g, 4.5);  // last write wins within a shard
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("test.level", -1.0), 4.5);
}

TEST(Registry, HistogramObserveMergesBins) {
  Registry reg;
  const MetricId h = reg.histogram("test.lat", 0.0, 10.0, 5);
  Registry::Shard& s1 = reg.create_shard();
  Registry::Shard& s2 = reg.create_shard();
  s1.observe(h, 1.0);   // bin 0
  s2.observe(h, 9.0);   // bin 4
  s2.observe(h, 99.0);  // clamps to bin 4
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const Histogram& hist = snap.histograms[0].hist;
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_EQ(hist.bin_count(0), 1u);
  EXPECT_EQ(hist.bin_count(4), 2u);
}

TEST(Registry, MetricRegisteredAfterShardCreationStillCounts) {
  Registry reg;
  Registry::Shard& s = reg.create_shard();
  const MetricId late = reg.counter("test.late");
  s.add(late, 2.0);  // shard grows lazily to fit the new id
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("test.late", -1.0), 2.0);
}

TEST(Registry, OneShardPerWorkerUnderParallelFor) {
  // The intended concurrent pattern: workers register their shard up front
  // and accumulate without synchronization; snapshot() after the join sees
  // every increment exactly once.
  Registry reg;
  const MetricId c = reg.counter("par.count");
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kPerWorker = 10000;
  std::vector<Registry::Shard*> shards;
  shards.reserve(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) {
    shards.push_back(&reg.create_shard());
  }
  ThreadPool pool(kWorkers);
  parallel_for(pool, kWorkers, [&](std::size_t w) {
    for (std::size_t i = 0; i < kPerWorker; ++i) shards[w]->add(c);
  });
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("par.count", -1.0),
                   static_cast<double>(kWorkers * kPerWorker));
}

TEST(Registry, ConcurrentRegistrationAndShardCreationIsSafe) {
  // Arms registering their own labelled metrics mid-flight (the bench
  // pattern) must not race; every arm's count survives.
  Registry reg;
  constexpr std::size_t kArms = 8;
  ThreadPool pool(kArms);
  parallel_for(pool, kArms, [&](std::size_t a) {
    const MetricId id =
        reg.counter("arm.count", "arm=" + std::to_string(a));
    Registry::Shard& s = reg.create_shard();
    for (int i = 0; i < 1000; ++i) s.add(id);
  });
  const Snapshot snap = reg.snapshot();
  for (std::size_t a = 0; a < kArms; ++a) {
    EXPECT_DOUBLE_EQ(
        snap.value_or("arm.count", -1.0, "arm=" + std::to_string(a)), 1000.0);
  }
}

// --- Tracer -----------------------------------------------------------------

TraceEvent ev_for_flow(std::uint64_t flow) {
  TraceEvent ev;
  ev.kind = TraceKind::Forward;
  ev.flow = flow;
  return ev;
}

TEST(Tracer, RecordsInOrder) {
  Tracer tr(8);
  for (std::uint64_t i = 0; i < 5; ++i) tr.record(ev_for_flow(i));
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(evs[i].flow, i);
  EXPECT_EQ(tr.overwritten(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCounts) {
  Tracer tr(4);
  for (std::uint64_t i = 0; i < 10; ++i) tr.record(ev_for_flow(i));
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-to-newest: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].flow, 6 + i);
  EXPECT_EQ(tr.overwritten(), 6u);
}

TEST(Tracer, FlowFilter) {
  Tracer tr(16);
  EXPECT_TRUE(tr.wants(1));
  EXPECT_TRUE(tr.wants(2));
  tr.set_flow_filter(1);
  EXPECT_TRUE(tr.wants(1));
  EXPECT_FALSE(tr.wants(2));
  EXPECT_TRUE(tr.wants(kNoTraceFlow));  // control-plane events always pass
  tr.clear_flow_filter();
  EXPECT_TRUE(tr.wants(2));
}

TEST(Tracer, ClearResets) {
  Tracer tr(4);
  for (int i = 0; i < 6; ++i) tr.record(ev_for_flow(1));
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.overwritten(), 0u);
}

TEST(Tracer, DescribeMentionsTheKind) {
  TraceEvent ev;
  ev.kind = TraceKind::TagCheckFail;
  ev.tag = false;
  ev.rel = topo::Rel::Peer;
  const std::string s = Tracer::describe(ev);
  EXPECT_NE(s.find("tag-check-FAIL"), std::string::npos) << s;
  ev.kind = TraceKind::ReturnDetected;
  EXPECT_NE(Tracer::describe(ev).find("return-detected"), std::string::npos);
}

// --- Json -------------------------------------------------------------------

TEST(Json, DumpCompact) {
  Json root = Json::object();
  root.set("a", Json::num(std::uint64_t{1}));
  root.set("b", Json::str("x\"y"));
  root.set("c", Json::boolean(true));
  Json arr = Json::array();
  arr.push(Json::num(1.5));
  arr.push(Json());
  root.set("d", std::move(arr));
  EXPECT_EQ(root.dump(), R"({"a":1,"b":"x\"y","c":true,"d":[1.5,null]})");
}

TEST(Json, KeyOrderIsInsertionOrder) {
  Json root = Json::object();
  root.set("zzz", Json::num(std::uint64_t{1}));
  root.set("aaa", Json::num(std::uint64_t{2}));
  const std::string s = root.dump();
  EXPECT_LT(s.find("zzz"), s.find("aaa"));
}

TEST(Json, IndentedDumpIsValidShape) {
  Json root = Json::object();
  root.set("k", Json::num(42.0));
  const std::string s = root.dump(2);
  EXPECT_NE(s.find("{\n  \"k\": 42\n}"), std::string::npos) << s;
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::num(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

// --- artifact writers -------------------------------------------------------

class ArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "mifo_obs_artifacts";
    std::string cmd = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ::setenv("MIFO_ARTIFACT_DIR", dir_.c_str(), 1);
  }
  void TearDown() override { ::unsetenv("MIFO_ARTIFACT_DIR"); }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string dir_;
};

TEST_F(ArtifactTest, WriteArtifactRoundTrips) {
  Json root = Json::object();
  root.set("schema", Json::str("mifo.run_artifact.v1"));
  root.set("n", Json::num(std::uint64_t{3}));
  const std::string path = write_artifact("unit_test_artifact", root);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, dir_ + "/unit_test_artifact.json");
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\": \"mifo.run_artifact.v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"n\": 3"), std::string::npos);
}

TEST_F(ArtifactTest, WriteCsvEmitsHeaderAndRows) {
  const std::string path =
      write_csv("unit_test_series", {"t", "v"}, {{0.5, 1.0}, {1.0, 2.5}});
  ASSERT_FALSE(path.empty());
  const std::string body = slurp(path);
  EXPECT_EQ(body, "t,v\n0.5,1\n1,2.5\n");
}

TEST_F(ArtifactTest, DashDisablesEmission) {
  ::setenv("MIFO_ARTIFACT_DIR", "-", 1);
  EXPECT_TRUE(artifact_dir().empty());
  EXPECT_TRUE(write_artifact("nope", Json::object()).empty());
  EXPECT_TRUE(write_csv("nope", {"a"}, {}).empty());
}

TEST_F(ArtifactTest, SnapshotToJsonCarriesLabelsAndKinds) {
  Registry reg;
  const MetricId c = reg.counter("x", "k=v");
  reg.create_shard().add(c, 2.0);
  const std::string s = to_json(reg.snapshot()).dump();
  EXPECT_NE(s.find("\"labels\":\"k=v\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"kind\":\"counter\""), std::string::npos) << s;
}

// --- explicit-bounds histograms ---------------------------------------------

TEST(Histogram, ExplicitEdgesBinValues) {
  Histogram h(std::vector<double>{0.0, 0.01, 0.1, 1.0});
  h.add(0.005);  // bin 0
  h.add(0.05);   // bin 1
  h.add(0.5);    // bin 2
  h.add(5.0);    // clamps into the last bin
  h.add(-1.0);   // clamps into the first bin
  EXPECT_EQ(h.bins(), 3u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 0.01);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 0.1);
}

TEST(Histogram, ExplicitEdgesBoundaryGoesToUpperBin) {
  // upper_bound semantics: a value exactly on an interior edge lands in the
  // bin whose low edge it is.
  Histogram h(std::vector<double>{0.0, 1.0, 2.0});
  h.add(1.0);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, ExplicitEdgesMerge) {
  Histogram a(std::vector<double>{0.0, 0.5, 1.0});
  Histogram b(std::vector<double>{0.0, 0.5, 1.0});
  a.add(0.25);
  b.add(0.75);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(1), 1u);
}

TEST(Registry, ExplicitBoundsHistogramObserveAndSnapshot) {
  Registry reg;
  const MetricId h =
      reg.histogram("test.rec", {0.0, 0.01, 0.1, 1.0}, "k=v");
  Registry::Shard& s = reg.create_shard();
  s.observe(h, 0.05);
  s.observe(h, 0.5);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const Histogram& hist = snap.histograms[0].hist;
  EXPECT_EQ(hist.bins(), 3u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(2), 1u);
  // The snapshot JSON carries the explicit bounds for schema consumers.
  const std::string js = to_json(snap).dump();
  EXPECT_NE(js.find("\"bounds\""), std::string::npos) << js;
}

TEST(Registry, SetHistogramReplacesInsteadOfAccumulating) {
  // The exactly-once publish contract: re-publishing a snapshot-style
  // histogram must not double its counts (satellite fix for snapshot racing
  // a barrier rendezvous republish).
  Registry reg;
  const MetricId id = reg.histogram("test.win", {0.0, 1.0, 2.0});
  Registry::Shard& s = reg.create_shard();
  Histogram h(std::vector<double>{0.0, 1.0, 2.0});
  h.add(0.5);
  h.add(1.5);
  s.set_histogram(id, h);
  s.set_histogram(id, h);  // idempotent re-publish
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.total(), 2u);
}

TEST(Registry, MergeHistogramAccumulatesAcrossCalls) {
  Registry reg;
  const MetricId id = reg.histogram("test.acc", {0.0, 1.0, 2.0});
  Registry::Shard& s = reg.create_shard();
  Histogram h(std::vector<double>{0.0, 1.0, 2.0});
  h.add(0.5);
  s.merge_histogram(id, h);
  s.merge_histogram(id, h);
  EXPECT_EQ(reg.snapshot().histograms[0].hist.total(), 2u);
}

// --- flight-recorder trace context ------------------------------------------

TEST(Tracer, StampsShardEpochAndSeq) {
  Tracer tr(8);
  tr.set_shard(3);
  tr.set_epoch(7);
  tr.record(ev_for_flow(1));
  tr.set_epoch(8);
  tr.record(ev_for_flow(2));
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].shard, 3u);
  EXPECT_EQ(evs[0].epoch, 7u);
  EXPECT_EQ(evs[0].seq, 0u);
  EXPECT_EQ(evs[1].epoch, 8u);
  EXPECT_EQ(evs[1].seq, 1u);
}

TEST(Tracer, SeqSurvivesRingWraparound) {
  Tracer tr(4);
  for (std::uint64_t i = 0; i < 10; ++i) tr.record(ev_for_flow(i));
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  // seq is the per-tracer recording ordinal, not a ring slot index.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].seq, 6 + i);
}

TEST(Tracer, SpareAdvertSuppression) {
  Tracer tr(8);
  tr.set_keep_spare_adverts(false);
  TraceEvent sa;
  sa.kind = TraceKind::SpareAdvert;
  tr.record(sa);
  tr.record(ev_for_flow(1));
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, TraceKind::Forward);
}

TEST(TimelineMerge, EpochMajorOrderAcrossTracers) {
  // Tracer A records epochs {0, 2}, tracer B epoch 1 with an *earlier*
  // sim time: the merge must still be epoch-major (the conservative-window
  // guarantee makes epoch the causal unit, not raw t).
  Tracer a(8);
  Tracer b(8);
  a.set_shard(0);
  b.set_shard(1);
  TraceEvent ev;
  ev.kind = TraceKind::Forward;
  ev.flow = 1;
  ev.t = 1.0;
  a.set_epoch(0);
  a.record(ev);
  ev.t = 0.5;
  b.set_epoch(1);
  b.record(ev);
  ev.t = 2.0;
  a.set_epoch(2);
  a.record(ev);
  const Timeline tl = merge_timelines({&a, &b});
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_TRUE(tl.epoch_monotone());
  EXPECT_EQ(tl.events[0].epoch, 0u);
  EXPECT_EQ(tl.events[1].epoch, 1u);
  EXPECT_EQ(tl.events[1].shard, 1u);
  EXPECT_EQ(tl.events[2].epoch, 2u);
}

TEST(TimelineMerge, SameEpochTieBreaksOnTimeThenRouter) {
  Tracer a(8);
  Tracer b(8);
  b.set_shard(1);
  TraceEvent ev;
  ev.kind = TraceKind::Forward;
  ev.flow = 1;
  ev.t = 2.0;
  ev.router = 9;
  a.record(ev);
  ev.t = 2.0;
  ev.router = 4;
  b.record(ev);
  ev.t = 1.0;
  ev.router = 30;
  b.record(ev);
  const Timeline tl = merge_timelines({&a, &b});
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_DOUBLE_EQ(tl.events[0].t, 1.0);
  EXPECT_EQ(tl.events[1].router, 4u);  // same t: lower router first
  EXPECT_EQ(tl.events[2].router, 9u);
}

TEST(TimelineMerge, ConcurrentAppendUnderParallelForStaysOrdered) {
  // Satellite coverage for the TSan leg: one tracer per worker (the
  // single-writer contract), concurrent appends with ring wraparound, then
  // a snapshot merge. The merged timeline must be deterministically ordered
  // and account for every overwrite.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kPerWorker = 1000;
  constexpr std::size_t kCapacity = 256;  // forces wraparound
  std::vector<std::unique_ptr<Tracer>> tracers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    tracers.push_back(std::make_unique<Tracer>(kCapacity));
    tracers.back()->set_shard(static_cast<std::uint32_t>(w));
  }
  ThreadPool pool(kWorkers);
  parallel_for(pool, kWorkers, [&](std::size_t w) {
    for (std::size_t i = 0; i < kPerWorker; ++i) {
      TraceEvent ev;
      ev.kind = TraceKind::Forward;
      ev.flow = w;
      ev.t = static_cast<SimTime>(i);
      ev.router = static_cast<std::uint32_t>(w);
      tracers[w]->set_epoch(i / 100);
      tracers[w]->record(ev);
    }
  });
  std::vector<const Tracer*> ptrs;
  for (const auto& tr : tracers) ptrs.push_back(tr.get());
  const Timeline tl = merge_timelines(ptrs);
  EXPECT_EQ(tl.events.size(), kWorkers * kCapacity);
  EXPECT_EQ(tl.overwritten, kWorkers * (kPerWorker - kCapacity));
  EXPECT_TRUE(tl.epoch_monotone());
  for (std::size_t i = 1; i < tl.events.size(); ++i) {
    EXPECT_FALSE(trace_order(tl.events[i], tl.events[i - 1]))
        << "order violated at " << i;
  }
}

// --- Json parser -------------------------------------------------------------

TEST(Json, ParseRoundTripsDump) {
  Json root = Json::object();
  root.set("a", Json::num(std::uint64_t{42}));
  root.set("b", Json::str("x\"\\y"));
  root.set("c", Json::boolean(false));
  Json arr = Json::array();
  arr.push(Json::num(1.5));
  arr.push(Json());
  root.set("d", std::move(arr));
  const auto parsed = Json::parse(root.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), root.dump());
  ASSERT_NE(parsed->find("a"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->find("a")->number(), 42.0);
  EXPECT_EQ(parsed->find("b")->text(), "x\"\\y");
  EXPECT_FALSE(parsed->find("c")->truth());
  EXPECT_TRUE(parsed->find("d")->items()[1].is_null());
}

TEST(Json, ParseRejectsMalformedAndTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

TEST(Json, ParseUnicodeEscape) {
  const auto parsed = Json::parse(R"(["Aé"])");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->items()[0].text(), "A\xc3\xa9");
}

// --- text exposition ---------------------------------------------------------

TEST(Exposition, RendersCounterWithLabels) {
  Registry reg;
  const MetricId c = reg.counter("dp.drops", "reason=valley");
  reg.create_shard().add(c, 3.0);
  const std::string text = text_exposition(reg.snapshot());
  EXPECT_NE(text.find("# TYPE dp_drops counter"), std::string::npos) << text;
  EXPECT_NE(text.find("dp_drops{reason=\"valley\"} 3"), std::string::npos)
      << text;
}

TEST(Exposition, HistogramBucketsAreCumulative) {
  Registry reg;
  const MetricId h = reg.histogram("test.lat", {0.0, 1.0, 2.0});
  Registry::Shard& s = reg.create_shard();
  s.observe(h, 0.5);
  s.observe(h, 1.5);
  const std::string text = text_exposition(reg.snapshot());
  EXPECT_NE(text.find("test_lat_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_bucket{le=\"2\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_count 2"), std::string::npos) << text;
}

TEST(Exposition, DumpServiceConsumesRequests) {
  Registry reg;
  reg.create_shard().add(reg.counter("x"), 1.0);
  DumpService ds(reg);
  EXPECT_FALSE(ds.service());  // nothing requested
  request_dump();
  EXPECT_TRUE(dump_requested());
  EXPECT_TRUE(ds.service());   // consumed...
  EXPECT_FALSE(ds.service());  // ...exactly once
}

// --- log spec parsing (MIFO_LOG) --------------------------------------------

TEST(LogSpec, ParsesLevelAndComponent) {
  const LogSpec spec = parse_log_spec("debug:dp.router", LogLevel::Info);
  EXPECT_EQ(spec.level, LogLevel::Debug);
  EXPECT_EQ(spec.component_prefix, "dp.router");
}

TEST(LogSpec, LevelOnly) {
  const LogSpec spec = parse_log_spec("warn", LogLevel::Info);
  EXPECT_EQ(spec.level, LogLevel::Warn);
  EXPECT_TRUE(spec.component_prefix.empty());
}

TEST(LogSpec, UnknownLevelFallsBack) {
  const LogSpec spec = parse_log_spec("chatty:dp", LogLevel::Error);
  EXPECT_EQ(spec.level, LogLevel::Error);
  EXPECT_EQ(spec.component_prefix, "dp");
}

TEST(LogSpec, OffSilencesEverything) {
  EXPECT_EQ(parse_log_spec("off", LogLevel::Info).level, LogLevel::Off);
}

}  // namespace
}  // namespace mifo::obs
