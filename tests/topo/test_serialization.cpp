#include "topo/serialization.hpp"

#include <gtest/gtest.h>

#include "topo/analysis.hpp"
#include "topo/generator.hpp"

namespace mifo::topo {
namespace {

TEST(Serialization, RoundTripSmallGraph) {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_peering(AsId(1), AsId(2));
  g.info(AsId(0)).tier = 1;
  g.info(AsId(2)).content_provider = true;

  const AsGraph parsed = parse_string(serialize_to_string(g));
  EXPECT_EQ(parsed.num_ases(), 3u);
  EXPECT_EQ(parsed.rel(AsId(0), AsId(1)), Rel::Customer);
  EXPECT_EQ(parsed.rel(AsId(1), AsId(0)), Rel::Provider);
  EXPECT_EQ(parsed.rel(AsId(1), AsId(2)), Rel::Peer);
  EXPECT_EQ(parsed.info(AsId(0)).tier, 1);
  EXPECT_TRUE(parsed.info(AsId(2)).content_provider);
}

TEST(Serialization, RoundTripGeneratedTopology) {
  GeneratorParams p;
  p.num_ases = 500;
  p.seed = 11;
  const AsGraph g = generate_topology(p);
  const AsGraph parsed = parse_string(serialize_to_string(g));

  ASSERT_EQ(parsed.num_ases(), g.num_ases());
  EXPECT_EQ(parsed.num_adjacencies(), g.num_adjacencies());
  EXPECT_EQ(parsed.num_pc_adjacencies(), g.num_pc_adjacencies());
  EXPECT_EQ(parsed.num_peer_adjacencies(), g.num_peer_adjacencies());
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(i);
    ASSERT_EQ(parsed.degree(as), g.degree(as)) << "AS " << i;
    for (const auto& nb : g.neighbors(as)) {
      EXPECT_EQ(parsed.rel(as, nb.as), nb.rel);
    }
    EXPECT_EQ(parsed.info(as).tier, g.info(as).tier);
    EXPECT_EQ(parsed.info(as).content_provider, g.info(as).content_provider);
  }
}

TEST(Serialization, ParseIgnoresCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "0 1 p2c\n"
      "# another\n"
      "1 2 peer\n";
  const AsGraph g = parse_string(text);
  EXPECT_EQ(g.num_ases(), 3u);
  EXPECT_EQ(g.rel(AsId(0), AsId(1)), Rel::Customer);
  EXPECT_EQ(g.rel(AsId(2), AsId(1)), Rel::Peer);
}

TEST(Serialization, ParseGrowsToLargestId) {
  const AsGraph g = parse_string("0 9 peer\n");
  EXPECT_EQ(g.num_ases(), 10u);
}

TEST(Serialization, DeclaredNodeCountCreatesIsolatedAses) {
  const AsGraph g = parse_string("# nodes 5\n0 1 p2c\n");
  EXPECT_EQ(g.num_ases(), 5u);
  EXPECT_EQ(g.degree(AsId(4)), 0u);
}

}  // namespace
}  // namespace mifo::topo
