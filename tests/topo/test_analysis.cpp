#include "topo/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/generator.hpp"

namespace mifo::topo {
namespace {

AsGraph chain_graph() {
  // 0 provides 1, 1 provides 2 — a 3-level hierarchy.
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(2));
  return g;
}

TEST(Attributes, CountsMatch) {
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(0), AsId(2));
  g.add_peering(AsId(1), AsId(2));
  g.info(AsId(0)).tier = 1;
  g.info(AsId(1)).tier = 2;
  const auto a = attributes(g);
  EXPECT_EQ(a.nodes, 4u);
  EXPECT_EQ(a.links, 3u);
  EXPECT_EQ(a.pc_links, 2u);
  EXPECT_EQ(a.peering_links, 1u);
  EXPECT_EQ(a.tier1, 1u);
  EXPECT_EQ(a.transit, 1u);
  EXPECT_EQ(a.stubs, 2u);
  EXPECT_DOUBLE_EQ(a.avg_degree, 1.5);
  EXPECT_EQ(a.max_degree, 2u);
}

TEST(Attributes, ReportContainsFields) {
  const auto a = attributes(chain_graph());
  const std::string report = attributes_report(a);
  EXPECT_NE(report.find("nodes=3"), std::string::npos);
  EXPECT_NE(report.find("p/c=2"), std::string::npos);
}

TEST(PcAcyclic, ChainIsAcyclic) { EXPECT_TRUE(is_pc_acyclic(chain_graph())); }

TEST(PcAcyclic, DetectsCycle) {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(2));
  g.add_provider_customer(AsId(2), AsId(0));  // provider cycle
  EXPECT_FALSE(is_pc_acyclic(g));
}

TEST(PcAcyclic, PeeringDoesNotCreateCycles) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(0));
  EXPECT_TRUE(is_pc_acyclic(g));
}

TEST(TopologicalOrder, ProvidersBeforeCustomers) {
  const AsGraph g = chain_graph();
  const auto order = pc_topological_order(g);
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&order](AsId as) {
    return std::find(order.begin(), order.end(), as) - order.begin();
  };
  EXPECT_LT(pos(AsId(0)), pos(AsId(1)));
  EXPECT_LT(pos(AsId(1)), pos(AsId(2)));
}

TEST(TopologicalOrder, GeneratedTopologyRespectsAllEdges) {
  GeneratorParams p;
  p.num_ases = 300;
  const AsGraph g = generate_topology(p);
  const auto order = pc_topological_order(g);
  std::vector<std::size_t> pos(g.num_ases());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].value()] = i;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    for (const auto& nb : g.neighbors(AsId(i))) {
      if (nb.rel == Rel::Customer) {
        EXPECT_LT(pos[i], pos[nb.as.value()]);
      }
    }
  }
}

TEST(Connectivity, DisconnectedDetected) {
  AsGraph g(4);
  g.add_peering(AsId(0), AsId(1));
  g.add_peering(AsId(2), AsId(3));
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, SingleNodeIsConnected) {
  AsGraph g(1);
  EXPECT_TRUE(is_connected(g));
}

TEST(CustomerRouteSet, UphillClosure) {
  // 0 -> 1 -> 2 hierarchy plus a peer 3 of 1: only the uphill chain holds
  // customer routes to 2.
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(1), AsId(2));
  g.add_peering(AsId(1), AsId(3));
  const auto set = customer_route_set(g, AsId(2));
  EXPECT_TRUE(set[2]);   // destination itself
  EXPECT_TRUE(set[1]);   // direct provider
  EXPECT_TRUE(set[0]);   // provider's provider
  EXPECT_FALSE(set[3]);  // peer: no customer route
}

TEST(CustomerRouteSet, DestOnlyWhenNoProviders) {
  AsGraph g(2);
  g.add_provider_customer(AsId(0), AsId(1));
  const auto set = customer_route_set(g, AsId(0));  // 0 has no providers
  EXPECT_TRUE(set[0]);
  EXPECT_FALSE(set[1]);
}

TEST(Degrees, MatchesGraph) {
  const AsGraph g = chain_graph();
  const auto d = degrees(g);
  EXPECT_EQ(d, (std::vector<std::size_t>{1, 2, 1}));
}

}  // namespace
}  // namespace mifo::topo
