#include "topo/relationship.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mifo::topo {
namespace {

TEST(Relationship, ReverseIsInvolution) {
  for (Rel r : {Rel::Customer, Rel::Peer, Rel::Provider}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Rel::Customer), Rel::Provider);
  EXPECT_EQ(reverse(Rel::Peer), Rel::Peer);
}

TEST(Relationship, StepDirClassification) {
  EXPECT_EQ(step_dir(Rel::Provider), StepDir::Up);
  EXPECT_EQ(step_dir(Rel::Peer), StepDir::Flat);
  EXPECT_EQ(step_dir(Rel::Customer), StepDir::Down);
}

// Eq. 3 truth table: transit allowed iff upstream is a customer OR
// downstream is a customer.
TEST(Eq3, FullTruthTable) {
  const Rel rels[] = {Rel::Customer, Rel::Peer, Rel::Provider};
  for (Rel up : rels) {
    for (Rel down : rels) {
      const bool expected = (up == Rel::Customer) || (down == Rel::Customer);
      EXPECT_EQ(may_transit(up, down), expected)
          << "up=" << to_string(up) << " down=" << to_string(down);
    }
  }
}

// "One more bit is enough": tag+check must realize exactly Eq. 3.
TEST(TagCheck, EquivalentToEq3) {
  const Rel rels[] = {Rel::Customer, Rel::Peer, Rel::Provider};
  for (Rel up : rels) {
    for (Rel down : rels) {
      EXPECT_EQ(check_bit(tag_bit(up), down), may_transit(up, down));
    }
  }
}

TEST(TagCheck, TagOnlyForCustomers) {
  EXPECT_TRUE(tag_bit(Rel::Customer));
  EXPECT_FALSE(tag_bit(Rel::Peer));
  EXPECT_FALSE(tag_bit(Rel::Provider));
}

TEST(ValleyFree, EmptyAndSingleStep) {
  EXPECT_TRUE(is_valley_free({}));
  for (StepDir d : {StepDir::Up, StepDir::Flat, StepDir::Down}) {
    std::vector<StepDir> steps{d};
    EXPECT_TRUE(is_valley_free(steps));
  }
}

TEST(ValleyFree, CanonicalShapes) {
  using S = std::vector<StepDir>;
  EXPECT_TRUE(is_valley_free(S{StepDir::Up, StepDir::Up, StepDir::Down}));
  EXPECT_TRUE(is_valley_free(
      S{StepDir::Up, StepDir::Flat, StepDir::Down, StepDir::Down}));
  EXPECT_TRUE(is_valley_free(S{StepDir::Flat, StepDir::Down}));
  EXPECT_TRUE(is_valley_free(S{StepDir::Down, StepDir::Down}));
}

TEST(ValleyFree, Violations) {
  using S = std::vector<StepDir>;
  // Down then up: a valley.
  EXPECT_FALSE(is_valley_free(S{StepDir::Down, StepDir::Up}));
  // Two peering hops.
  EXPECT_FALSE(is_valley_free(S{StepDir::Flat, StepDir::Flat}));
  // Peer then up.
  EXPECT_FALSE(is_valley_free(S{StepDir::Flat, StepDir::Up}));
  // Up after the single allowed flat step.
  EXPECT_FALSE(
      is_valley_free(S{StepDir::Up, StepDir::Flat, StepDir::Up}));
}

// Property: a step sequence is valley-free iff every interior transit
// satisfies Eq. 3 under the tag produced by the previous step. This is the
// paper's claim that the hop-by-hop rule equals the global property.
class ValleyFreeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ValleyFreeEquivalence, HopByHopEqualsGlobal) {
  // Enumerate all step sequences of the given length.
  const int len = GetParam();
  const StepDir dirs[] = {StepDir::Up, StepDir::Flat, StepDir::Down};
  int total = 1;
  for (int i = 0; i < len; ++i) total *= 3;
  for (int code = 0; code < total; ++code) {
    std::vector<StepDir> steps;
    int c = code;
    for (int i = 0; i < len; ++i) {
      steps.push_back(dirs[c % 3]);
      c /= 3;
    }
    // Hop-by-hop: the tag entering hop i reflects the relationship with the
    // upstream neighbor; sources start tagged (like customer ingress).
    bool ok = true;
    bool tag = true;
    for (const StepDir s : steps) {
      const Rel down = s == StepDir::Up     ? Rel::Provider
                       : s == StepDir::Flat ? Rel::Peer
                                            : Rel::Customer;
      if (!check_bit(tag, down)) {
        ok = false;
        break;
      }
      // The next AS sees us as customer iff we stepped up to it.
      tag = (s == StepDir::Up);
    }
    EXPECT_EQ(ok, is_valley_free(steps)) << "len=" << len << " code=" << code;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ValleyFreeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace mifo::topo
