#include "topo/as_graph.hpp"

#include <gtest/gtest.h>

namespace mifo::topo {
namespace {

TEST(AsGraph, EmptyGraph) {
  AsGraph g;
  EXPECT_EQ(g.num_ases(), 0u);
  EXPECT_EQ(g.num_adjacencies(), 0u);
}

TEST(AsGraph, ProviderCustomerBothPerspectives) {
  AsGraph g(2);
  ASSERT_TRUE(g.add_provider_customer(AsId(0), AsId(1)));
  // From AS0's view, AS1 is a customer; from AS1's view, AS0 is a provider.
  EXPECT_EQ(g.rel(AsId(0), AsId(1)), Rel::Customer);
  EXPECT_EQ(g.rel(AsId(1), AsId(0)), Rel::Provider);
  EXPECT_EQ(g.num_pc_adjacencies(), 1u);
  EXPECT_EQ(g.num_peer_adjacencies(), 0u);
}

TEST(AsGraph, PeeringSymmetric) {
  AsGraph g(2);
  ASSERT_TRUE(g.add_peering(AsId(0), AsId(1)));
  EXPECT_EQ(g.rel(AsId(0), AsId(1)), Rel::Peer);
  EXPECT_EQ(g.rel(AsId(1), AsId(0)), Rel::Peer);
  EXPECT_EQ(g.num_peer_adjacencies(), 1u);
}

TEST(AsGraph, DuplicateAdjacencyRefused) {
  AsGraph g(2);
  ASSERT_TRUE(g.add_provider_customer(AsId(0), AsId(1)));
  EXPECT_FALSE(g.add_provider_customer(AsId(0), AsId(1)));
  EXPECT_FALSE(g.add_provider_customer(AsId(1), AsId(0)));
  EXPECT_FALSE(g.add_peering(AsId(0), AsId(1)));
  EXPECT_EQ(g.num_adjacencies(), 1u);
}

TEST(AsGraph, NotAdjacent) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  EXPECT_FALSE(g.rel(AsId(0), AsId(2)).has_value());
  EXPECT_FALSE(g.adjacent(AsId(1), AsId(2)));
  EXPECT_FALSE(g.link(AsId(0), AsId(2)).valid());
}

TEST(AsGraph, DirectedLinksAndTwins) {
  AsGraph g(2);
  g.add_peering(AsId(0), AsId(1));
  const LinkId l01 = g.link(AsId(0), AsId(1));
  const LinkId l10 = g.link(AsId(1), AsId(0));
  ASSERT_TRUE(l01.valid());
  ASSERT_TRUE(l10.valid());
  EXPECT_NE(l01, l10);
  EXPECT_EQ(g.twin(l01), l10);
  EXPECT_EQ(g.twin(l10), l01);
  EXPECT_EQ(g.link_from(l01), AsId(0));
  EXPECT_EQ(g.link_to(l01), AsId(1));
  EXPECT_EQ(g.num_directed_links(), 2u);
}

TEST(AsGraph, NeighborIteration) {
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_peering(AsId(0), AsId(3));
  const auto nbs = g.neighbors(AsId(0));
  ASSERT_EQ(nbs.size(), 3u);
  EXPECT_EQ(g.customer_count(AsId(0)), 1u);
  EXPECT_EQ(g.provider_count(AsId(0)), 1u);
  EXPECT_EQ(g.peer_count(AsId(0)), 1u);
  EXPECT_EQ(g.degree(AsId(0)), 3u);
}

TEST(AsGraph, NeighborLinkMatchesLookup) {
  AsGraph g(3);
  g.add_provider_customer(AsId(0), AsId(1));
  g.add_peering(AsId(1), AsId(2));
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (const auto& nb : g.neighbors(AsId(i))) {
      EXPECT_EQ(nb.link, g.link(AsId(i), nb.as));
      EXPECT_EQ(g.link_from(nb.link), AsId(i));
      EXPECT_EQ(g.link_to(nb.link), nb.as);
    }
  }
}

TEST(AsGraph, InfoAnnotations) {
  AsGraph g(2);
  g.info(AsId(0)).tier = 1;
  g.info(AsId(1)).content_provider = true;
  EXPECT_EQ(g.info(AsId(0)).tier, 1);
  EXPECT_TRUE(g.info(AsId(1)).content_provider);
  EXPECT_EQ(g.info(AsId(1)).tier, 3);  // default
}

TEST(AsGraph, ResizeGrowsOnly) {
  AsGraph g(2);
  g.resize(5);
  EXPECT_EQ(g.num_ases(), 5u);
}

}  // namespace
}  // namespace mifo::topo
