#include "topo/generator.hpp"

#include <gtest/gtest.h>

#include "topo/analysis.hpp"

namespace mifo::topo {
namespace {

GeneratorParams small_params(std::uint64_t seed = 1) {
  GeneratorParams p;
  p.num_ases = 400;
  p.seed = seed;
  return p;
}

TEST(Generator, Deterministic) {
  const AsGraph a = generate_topology(small_params(5));
  const AsGraph b = generate_topology(small_params(5));
  EXPECT_EQ(a.num_adjacencies(), b.num_adjacencies());
  EXPECT_EQ(a.num_pc_adjacencies(), b.num_pc_adjacencies());
  for (std::uint32_t i = 0; i < a.num_ases(); ++i) {
    EXPECT_EQ(a.degree(AsId(i)), b.degree(AsId(i)));
  }
}

TEST(Generator, SeedChangesGraph) {
  const AsGraph a = generate_topology(small_params(1));
  const AsGraph b = generate_topology(small_params(2));
  bool any_diff = a.num_adjacencies() != b.num_adjacencies();
  for (std::uint32_t i = 0; !any_diff && i < a.num_ases(); ++i) {
    any_diff = a.degree(AsId(i)) != b.degree(AsId(i));
  }
  EXPECT_TRUE(any_diff);
}

// The structural invariants every downstream algorithm relies on.
class GeneratorInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(GeneratorInvariants, PcDagAcyclic) {
  auto [n, seed] = GetParam();
  GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  const AsGraph g = generate_topology(p);
  EXPECT_TRUE(is_pc_acyclic(g));
}

TEST_P(GeneratorInvariants, Connected) {
  auto [n, seed] = GetParam();
  GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  EXPECT_TRUE(is_connected(generate_topology(p)));
}

TEST_P(GeneratorInvariants, EveryNonTier1HasAProvider) {
  auto [n, seed] = GetParam();
  GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  const AsGraph g = generate_topology(p);
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    if (g.info(AsId(i)).tier == 1) continue;
    EXPECT_GE(g.provider_count(AsId(i)), 1u) << "AS " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, GeneratorInvariants,
    ::testing::Combine(::testing::Values<std::size_t>(50, 200, 1000),
                       ::testing::Values<std::uint64_t>(1, 7, 1234)));

TEST(Generator, Tier1FormsPeeringClique) {
  const AsGraph g = generate_topology(small_params());
  const auto attrs = attributes(g);
  ASSERT_GE(attrs.tier1, 2u);
  for (std::uint32_t i = 0; i < attrs.tier1; ++i) {
    for (std::uint32_t j = i + 1; j < attrs.tier1; ++j) {
      EXPECT_EQ(g.rel(AsId(i), AsId(j)), Rel::Peer);
    }
  }
}

TEST(Generator, PeeringMixNearTarget) {
  GeneratorParams p;
  p.num_ases = 2000;
  p.seed = 3;
  const AsGraph g = generate_topology(p);
  const double frac = static_cast<double>(g.num_peer_adjacencies()) /
                      static_cast<double>(g.num_adjacencies());
  // Table I: 31.4% peering. Allow generator slack.
  EXPECT_GT(frac, 0.22);
  EXPECT_LT(frac, 0.45);
}

TEST(Generator, DegreeDistributionHeavyTailed) {
  GeneratorParams p;
  p.num_ases = 2000;
  const AsGraph g = generate_topology(p);
  const auto attrs = attributes(g);
  // Preferential attachment: the hub degree dwarfs the average.
  EXPECT_GT(static_cast<double>(attrs.max_degree), 10.0 * attrs.avg_degree);
}

TEST(Generator, ContentProvidersExistAndPeerWidely) {
  GeneratorParams p;
  p.num_ases = 2000;
  const AsGraph g = generate_topology(p);
  std::size_t cps = 0;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(i);
    if (!g.info(as).content_provider) continue;
    ++cps;
    EXPECT_GE(g.peer_count(as), 5u);
  }
  EXPECT_GE(cps, 1u);
}

TEST(Generator, AverageDegreeInternetLike) {
  GeneratorParams p;
  p.num_ases = 2000;
  const AsGraph g = generate_topology(p);
  const auto attrs = attributes(g);
  // Table I: avg degree ~4.9. Accept a broad but Internet-like band.
  EXPECT_GT(attrs.avg_degree, 3.0);
  EXPECT_LT(attrs.avg_degree, 9.0);
}

TEST(Generator, TinyTopologyStillValid) {
  GeneratorParams p;
  p.num_ases = 3;
  p.num_tier1 = 2;
  const AsGraph g = generate_topology(p);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_pc_acyclic(g));
}

}  // namespace
}  // namespace mifo::topo
