// mifo-chaos — fault-injection runner with safety-under-churn verification
// (docs/CHAOS.md).
//
// Builds a MIFO deployment on a generated (or loaded) topology, runs seeded
// background traffic through the packet emulator, and injects a chaos plan
// (scripted file or seeded random schedule) while re-proving loop-freedom
// and FIB/RIB consistency after every event and reconvergence window.
//
//   mifo-chaos --gen --seed 3 --duration 1.5        # randomized churn
//   mifo-chaos --plan scenario.txt                  # scripted scenario
//   mifo-chaos --gen --seed 7 --mutate-valley       # planted Eq.3 violation;
//                                                   # expects a caught cycle
//
// Exit status: 0 = every snapshot safe, 1 = usage/input error,
// 2 = violation found (a counterexample cycle or lint issue, attributed to
// the event that triggered it). Artifacts (mifo.run_artifact.v1 with a
// `chaos` section) land in MIFO_ARTIFACT_DIR; the run is bit-reproducible
// for a fixed (topology, seed, plan).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "common/rng.hpp"
#include "obs/artifact.hpp"
#include "obs/exposition.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "testbed/emulation.hpp"
#include "topo/generator.hpp"
#include "topo/serialization.hpp"

using namespace mifo;

namespace {

struct Options {
  std::string topo_file;
  std::string plan_file;
  bool gen = false;
  std::size_t ases = 40;
  std::uint64_t seed = 1;
  SimTime duration = 1.0;
  double rate = 6.0;
  SimTime mttr = 0.15;
  std::size_t dests = 6;
  std::size_t flows = 48;
  bool mutate_valley = false;
  bool mutate_stale_route = false;
  bool print_plan = false;
  bool quiet = false;
  chaos::VerifyMode verify_mode = chaos::VerifyMode::Full;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--plan FILE | --gen] [--topo FILE] [--ases N] [--seed S]\n"
      "          [--duration T] [--rate R] [--mttr M] [--dests K]\n"
      "          [--flows F] [--verify-mode MODE] [--mutate-valley]\n"
      "          [--mutate-stale-route] [--print-plan] [-q]\n"
      "  --plan FILE     scripted chaos plan (docs/CHAOS.md DSL)\n"
      "  --gen           seeded random plan (Poisson faults, default)\n"
      "  --topo FILE     CAIDA-style topology dump (default: generated)\n"
      "  --ases N        generated topology size (default 40)\n"
      "  --seed S        master seed: topology, traffic, plan (default 1)\n"
      "  --duration T    plan duration in sim seconds (default 1.0)\n"
      "  --rate R        mean fault arrivals/sec for --gen (default 6)\n"
      "  --mttr M        mean time-to-repair for --gen (default 0.15)\n"
      "  --dests K       prefix-owning ASes (default 6)\n"
      "  --flows F       background flows (default 48)\n"
      "  --verify-mode MODE  full | incremental | differential (default\n"
      "                  full). incremental re-proves only the destinations\n"
      "                  each fault dirtied; differential also runs the full\n"
      "                  provers as an oracle and fails on any divergence\n"
      "  --mutate-valley plant an Eq.3-violating deflection ring mid-run;\n"
      "                  the verifier must catch it (expects exit 2)\n"
      "  --mutate-stale-route\n"
      "                  withdraw an origin but skip its delta route\n"
      "                  recompute; forces differential mode, whose\n"
      "                  from-scratch rebuild must catch the stale CSR\n"
      "                  segment (expects exit 2)\n"
      "  --print-plan    dump the effective plan before running\n"
      "  -q              verdict only\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--plan" && (v = next())) {
      opt.plan_file = v;
    } else if (arg == "--gen") {
      opt.gen = true;
    } else if (arg == "--topo" && (v = next())) {
      opt.topo_file = v;
    } else if (arg == "--ases" && (v = next())) {
      opt.ases = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next())) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--duration" && (v = next())) {
      opt.duration = std::atof(v);
    } else if (arg == "--rate" && (v = next())) {
      opt.rate = std::atof(v);
    } else if (arg == "--mttr" && (v = next())) {
      opt.mttr = std::atof(v);
    } else if (arg == "--dests" && (v = next())) {
      opt.dests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--flows" && (v = next())) {
      opt.flows = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--verify-mode" && (v = next())) {
      const std::string mode = v;
      if (mode == "full") {
        opt.verify_mode = chaos::VerifyMode::Full;
      } else if (mode == "incremental") {
        opt.verify_mode = chaos::VerifyMode::Incremental;
      } else if (mode == "differential") {
        opt.verify_mode = chaos::VerifyMode::Differential;
      } else {
        return false;
      }
    } else if (arg == "--mutate-valley") {
      opt.mutate_valley = true;
    } else if (arg == "--mutate-stale-route") {
      opt.mutate_stale_route = true;
      // plant_stale_route is only observable by the route differential
      // oracle, so the flag implies the mode that can catch it.
      opt.verify_mode = chaos::VerifyMode::Differential;
    } else if (arg == "--print-plan") {
      opt.print_plan = true;
    } else if (arg == "-q") {
      opt.quiet = true;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return opt.ases >= 4 && opt.dests >= 2 && opt.duration > 0.0 &&
         opt.rate > 0.0 && opt.mttr > 0.0;
}

/// Inter-AS links ranked by bytes carried (descending, deterministic
/// tie-break on router:port), capped at `max_links`. Every value is driven
/// by the simulation clock, so the section is byte-reproducible.
obs::Json links_json(const dp::Network& net, std::size_t max_links) {
  struct LinkRow {
    std::uint32_t router;
    std::uint32_t port;
    std::uint32_t peer_router;
    std::uint64_t bytes;
    std::uint64_t pkts;
    std::uint64_t drops_overflow;
    std::uint64_t drops_down;
    double queue_ratio;
  };
  std::vector<LinkRow> rows;
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    const dp::Router& router =
        net.router(RouterId(static_cast<std::uint32_t>(r)));
    for (std::size_t pi = 0; pi < router.num_ports(); ++pi) {
      const dp::Port& port =
          router.port(PortId(static_cast<std::uint32_t>(pi)));
      if (port.kind != dp::PortKind::Ebgp || port.bytes_sent_total == 0) {
        continue;
      }
      rows.push_back(LinkRow{static_cast<std::uint32_t>(r),
                             static_cast<std::uint32_t>(pi), port.peer.id,
                             port.bytes_sent_total, port.pkts_sent_total,
                             port.drops_overflow, port.drops_down,
                             port.queue_ratio()});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const LinkRow& a, const LinkRow& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.router != b.router) return a.router < b.router;
    return a.port < b.port;
  });
  if (rows.size() > max_links) rows.resize(max_links);
  obs::Json arr = obs::Json::array();
  for (const LinkRow& row : rows) {
    obs::Json j = obs::Json::object();
    j.set("router", obs::Json::num(static_cast<std::uint64_t>(row.router)));
    j.set("port", obs::Json::num(static_cast<std::uint64_t>(row.port)));
    j.set("peer_router",
          obs::Json::num(static_cast<std::uint64_t>(row.peer_router)));
    j.set("bytes_sent", obs::Json::num(row.bytes));
    j.set("pkts_sent", obs::Json::num(row.pkts));
    j.set("drops_overflow", obs::Json::num(row.drops_overflow));
    j.set("drops_down", obs::Json::num(row.drops_down));
    j.set("queue_ratio", obs::Json::num(row.queue_ratio));
    arr.push(std::move(j));
  }
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 1;
  }
  // Live introspection: SIGUSR1 (or MIFO_OBS_DUMP=<secs>) dumps the metric
  // registry in Prometheus text format to stderr at the next snapshot.
  obs::install_dump_signal();

  topo::AsGraph g;
  if (!opt.topo_file.empty()) {
    std::ifstream in(opt.topo_file);
    if (!in) {
      std::fprintf(stderr, "mifo-chaos: cannot open %s\n",
                   opt.topo_file.c_str());
      return 1;
    }
    g = topo::parse(in);
  } else {
    topo::GeneratorParams gp;
    gp.num_ases = opt.ases;
    gp.seed = opt.seed;
    g = topo::generate_topology(gp);
  }
  const std::size_t n = g.num_ases();

  // Deployment: prefix owners spread across the id space, every router
  // MIFO-enabled, one daemon per AS on a 10 ms tick.
  testbed::EmulationBuilder builder(g, std::vector<bool>(n, false));
  const std::size_t num_dests = std::min(opt.dests, n);
  std::vector<AsId> owner_ases;
  for (std::size_t i = 0; i < num_dests; ++i) {
    const std::size_t as = i * (n - 1) / (num_dests > 1 ? num_dests - 1 : 1);
    owner_ases.push_back(AsId(static_cast<std::uint32_t>(as)));
    builder.attach_host(owner_ases.back());
  }
  auto em = builder.finalize();
  dp::Network& net = *em.net;

  std::vector<AsId> all_ases;
  for (std::size_t i = 0; i < n; ++i) {
    all_ases.push_back(AsId(static_cast<std::uint32_t>(i)));
  }
  em.enable_mifo(all_ases, dp::RouterConfig{}, 0.01);

  obs::Tracer tracer(8192);
  // Spare-adverts tick on every link and would evict the packet walks the
  // timeline section exists to show; chaos events and packet hops stay.
  tracer.set_keep_spare_adverts(false);
  net.set_tracer(&tracer);

  // Seeded background traffic so faults hit live flows, not an idle fabric.
  Rng traffic_rng(hash_combine(opt.seed, 0x7aff1c));
  for (std::size_t i = 0; i < opt.flows; ++i) {
    dp::FlowParams fp;
    const std::size_t a = traffic_rng.bounded(em.hosts.size());
    std::size_t b = traffic_rng.bounded(em.hosts.size());
    if (b == a) b = (b + 1) % em.hosts.size();
    fp.src = em.hosts[a].host;
    fp.dst = em.hosts[b].host;
    fp.size = static_cast<Bytes>(1 + traffic_rng.bounded(4)) * kMegaByte;
    fp.start = traffic_rng.uniform(0.0, 0.6 * opt.duration);
    net.start_flow(fp);
  }

  // The plan: scripted file, or seeded random churn.
  chaos::Plan plan;
  if (!opt.plan_file.empty()) {
    std::ifstream in(opt.plan_file);
    if (!in) {
      std::fprintf(stderr, "mifo-chaos: cannot open %s\n",
                   opt.plan_file.c_str());
      return 1;
    }
    std::string error;
    const auto parsed = chaos::parse_plan(in, error);
    if (!parsed) {
      std::fprintf(stderr, "mifo-chaos: %s: %s\n", opt.plan_file.c_str(),
                   error.c_str());
      return 1;
    }
    plan = *parsed;
  } else {
    chaos::GenParams gp;
    gp.seed = opt.seed;
    gp.duration = opt.duration;
    gp.rate = opt.rate;
    gp.mttr = opt.mttr;
    gp.prefix_owners = owner_ases;
    plan = chaos::generate_plan(g, gp);
  }
  if (opt.mutate_valley) {
    chaos::Event ev;
    ev.t = 0.4 * plan.duration;
    ev.kind = chaos::EventKind::PlantValley;
    plan.events.push_back(ev);
    plan.normalize();
  }
  if (opt.mutate_stale_route) {
    chaos::Event ev;
    ev.t = 0.6 * plan.duration;
    ev.kind = chaos::EventKind::PlantStaleRoute;
    plan.events.push_back(ev);
    plan.normalize();
  }
  if (opt.print_plan) std::printf("%s", chaos::format_plan(plan).c_str());

  obs::Registry reg;
  net.publish_metrics(reg, "phase=start");  // reserve ids deterministically
  chaos::EngineConfig ec;
  ec.seed = opt.seed;
  ec.verify_mode = opt.verify_mode;
  chaos::Engine engine(em, g, ec);
  engine.attach_registry(reg, "");
  const chaos::Report report = engine.run(plan);

  // Snapshot the flight recorder now: the ring must reflect the churn
  // window, not the daemon chatter of the long drain below.
  const obs::Timeline timeline = obs::merge_timelines({&tracer});

  // Drain remaining traffic so the drop accounting below is final.
  net.run_to_completion(plan.duration + 30.0);

  if (!opt.quiet) {
    std::printf("topology: %zu ASes, %zu routers, %zu prefixes, %zu flows\n",
                n, net.num_routers(), em.hosts.size(), net.flows().size());
    std::printf("plan: %zu events (%zu applied), duration %.3f s\n",
                plan.events.size(), report.events_applied, plan.duration);
    for (const auto& ae : report.log) {
      std::printf("  %-42s %s%s%s  %s\n", ae.event.to_string().c_str(),
                  ae.applied ? "applied" : "skipped",
                  ae.applied && !ae.clean_immediate ? " UNSAFE" : "",
                  ae.applied && !ae.clean_reconverged ? " UNSAFE-RECONV" : "",
                  ae.detail.c_str());
    }
    std::printf("verification: %zu snapshots, %zu clean; deflection graph "
                "last pass: %zu states, %zu edges\n",
                report.checks_run, report.checks_clean,
                report.last_stats.states, report.last_stats.edges);
    if (report.verify_mode != chaos::VerifyMode::Full) {
      std::printf("incremental: %zu destinations re-proved, %zu cache hits "
                  "across %zu snapshots (%s mode, %zu differential "
                  "mismatches)\n",
                  report.total_dirty_destinations, report.total_cache_hits,
                  report.checks_run, chaos::to_string(report.verify_mode),
                  report.differential_mismatches);
    }
    if (report.route_events != 0) {
      std::printf("route delta: %zu events, %zu destinations recomputed, "
                  "%zu patched, %zu kept, %zu differential mismatches\n",
                  report.route_events, report.total_route_recomputed,
                  report.total_route_patched, report.total_route_unchanged,
                  report.route_differential_mismatches);
    }
    std::size_t done = 0;
    for (const auto& f : net.flows()) done += f.done ? 1 : 0;
    std::printf("traffic: %zu/%zu flows completed, %llu/%llu pkts "
                "delivered\n",
                done, net.flows().size(),
                static_cast<unsigned long long>(net.delivered_pkts()),
                static_cast<unsigned long long>(net.injected_pkts()));
    for (const auto& [reason, cnt] : net.drop_breakdown()) {
      if (cnt != 0) {
        std::printf("  drops %-14s %llu\n", reason.c_str(),
                    static_cast<unsigned long long>(cnt));
      }
    }
  }

  for (const auto& v : report.violations) {
    const auto& trigger = report.log[v.event_index];
    std::printf("COUNTEREXAMPLE [t=%.4f after '%s'] %s\n", v.t,
                trigger.event.to_string().c_str(), v.description.c_str());
  }

  // Artifact (extended mifo.run_artifact.v1 with the chaos section).
  net.publish_metrics(reg, "phase=end");
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("chaos_run"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(n)));
  scale.set("flows",
            obs::Json::num(static_cast<std::uint64_t>(opt.flows)));
  scale.set("dest_pool",
            obs::Json::num(static_cast<std::uint64_t>(num_dests)));
  scale.set("arrival", obs::Json::num(0.0));
  scale.set("seed", obs::Json::num(static_cast<std::uint64_t>(opt.seed)));
  root.set("scale", std::move(scale));
  root.set("chaos", report.to_json());
  root.set("drops", obs::drops_json(net.drop_breakdown()));
  root.set("timeline", obs::to_json(timeline));
  root.set("links", links_json(net, 64));
  root.set("metrics", obs::to_json(reg.snapshot()));
  const std::string path = obs::write_artifact("chaos_run", root);
  if (!path.empty() && !opt.quiet) {
    std::printf("artifact: %s\n", path.c_str());
  }

  if (report.safe) {
    std::printf("verdict: SAFE-UNDER-CHURN (%zu events, %zu snapshots all "
                "loop-free and lint-clean)\n",
                report.events_applied, report.checks_run);
    return 0;
  }
  std::printf("verdict: UNSAFE (%zu violations across %zu snapshots)\n",
              report.violations.size(), report.checks_run);
  return 2;
}
