// mifo-trace — flight-recorder reader (docs/OBSERVABILITY.md).
//
// Renders the observability sections of a mifo.run_artifact.v1 file (or a
// live dump on stdin via "-"): hop-by-hop flow paths reconstructed from the
// merged cross-shard timeline, per-failure recovery spans with the
// per-class latency breakdown, and the top-N congested inter-AS links.
//
//   mifo-trace chaos_run.json                 # everything
//   mifo-trace chaos_run.json --flow 3        # one flow's annotated walk
//   mifo-trace chaos_run.json --links 10      # top-10 congested links
//   mifo-trace chaos_run.json --check         # gate mode: validate ordering
//
// Gate mode (--check) asserts the timeline is ordered epoch-major with
// non-decreasing sim time inside each epoch (the merge invariant
// obs::trace_order guarantees) and that every span's milestones are
// causally ordered. Exit 0 = valid, 1 = usage/input error, 2 = violated.
// All output is a pure function of the artifact bytes, so two renderings
// of byte-identical artifacts are themselves byte-identical.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/artifact.hpp"

using namespace mifo;

namespace {

struct Options {
  std::string path;
  std::uint64_t flow = 0;
  bool have_flow = false;
  std::size_t links = 5;
  std::size_t max_flows = 8;
  bool check = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s ARTIFACT.json|- [--flow N] [--flows N] [--links N] "
      "[--check]\n"
      "  ARTIFACT     mifo.run_artifact.v1 file; '-' reads stdin\n"
      "  --flow N     render only flow N's hop-by-hop walk\n"
      "  --flows N    cap the number of flows rendered (default 8)\n"
      "  --links N    top-N congested links (default 5)\n"
      "  --check      validate timeline ordering + span causality; quiet\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--flow" && (v = next())) {
      opt.flow = static_cast<std::uint64_t>(std::atoll(v));
      opt.have_flow = true;
    } else if (arg == "--flows" && (v = next())) {
      opt.max_flows = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--links" && (v = next())) {
      opt.links = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--check") {
      opt.check = true;
    } else if (opt.path.empty() && !arg.empty() && arg[0] != '-') {
      opt.path = arg;
    } else if (opt.path.empty() && arg == "-") {
      opt.path = arg;
    } else {
      return false;
    }
  }
  return !opt.path.empty();
}

double num_of(const obs::Json& obj, const char* key, double fallback) {
  const obs::Json* j = obj.find(key);
  return j != nullptr ? j->number_or(fallback) : fallback;
}

std::string text_of(const obs::Json& obj, const char* key) {
  const obs::Json* j = obj.find(key);
  return j != nullptr && j->is_string() ? j->text() : std::string();
}

/// A packet-emission hop reconstructed from one timeline event.
struct Hop {
  double t = 0.0;
  std::uint64_t epoch = 0;
  std::uint32_t router = 0;
  std::uint32_t port = 0;
  std::uint32_t shard = 0;
  std::string kind;
};

/// Per-flow slice of the timeline: emissions plus terminal events.
struct FlowTrace {
  std::vector<Hop> hops;
  std::size_t events = 0;
  std::uint32_t origin_shard = 0;
  std::uint64_t inject_epoch = 0;
};

bool is_emission(const std::string& kind) {
  return kind == "forward" || kind == "deflect" || kind == "encap" ||
         kind == "decap" || kind == "DROP(valley)" ||
         kind == "DROP(no-route)" || kind == "DROP(ttl)";
}

/// The flow's forwarding path: routers in first-visit order over its
/// emission events — repeated packets retread the same routers, so first
/// visits spell out the path the emulator actually used.
std::vector<std::uint32_t> first_visit_path(const FlowTrace& ft) {
  std::vector<std::uint32_t> path;
  for (const Hop& h : ft.hops) {
    bool seen = false;
    for (const std::uint32_t r : path) seen = seen || r == h.router;
    if (!seen) path.push_back(h.router);
  }
  return path;
}

int check_artifact(const obs::Json& root) {
  const obs::Json* tl = root.find("timeline");
  if (tl == nullptr || tl->find("events") == nullptr) {
    std::fprintf(stderr, "mifo-trace: no timeline section\n");
    return 2;
  }
  // Merge invariant: epoch-major, sim time non-decreasing within an epoch.
  double prev_epoch = -1.0;
  double prev_t = -1.0;
  std::size_t idx = 0;
  for (const obs::Json& e : tl->find("events")->items()) {
    const double epoch = num_of(e, "epoch", 0.0);
    const double t = num_of(e, "t", 0.0);
    if (epoch < prev_epoch ||
        (epoch == prev_epoch && t < prev_t)) {
      std::fprintf(stderr,
                   "mifo-trace: ordering violated at event %zu "
                   "(epoch %.0f t %.9f after epoch %.0f t %.9f)\n",
                   idx, epoch, t, prev_epoch, prev_t);
      return 2;
    }
    prev_epoch = epoch;
    prev_t = t;
    ++idx;
  }
  // Span causality: injected <= first_impact, reconverged <= verified.
  if (const obs::Json* chaos = root.find("chaos")) {
    if (const obs::Json* spans = chaos->find("spans")) {
      std::size_t si = 0;
      for (const obs::Json& sp : spans->items()) {
        const double inj = num_of(sp, "t_injected", 0.0);
        const double imp = num_of(sp, "t_first_impact", inj);
        const double rec = num_of(sp, "t_reconverged", inj);
        const double ver = num_of(sp, "t_verified", rec);
        if (imp < inj || rec < inj || ver < rec) {
          std::fprintf(stderr, "mifo-trace: span %zu not causally ordered\n",
                       si);
          return 2;
        }
        ++si;
      }
    }
  }
  std::printf("mifo-trace: OK (%zu timeline events, ordering and span "
              "causality hold)\n",
              idx);
  return 0;
}

void render_flows(const obs::Json& tl, const Options& opt) {
  // Group timeline events by flow id, preserving merged order.
  std::map<std::uint64_t, FlowTrace> flows;
  for (const obs::Json& e : tl.find("events")->items()) {
    const obs::Json* f = e.find("flow");
    if (f == nullptr) continue;  // control-plane / chaos events
    const auto id = static_cast<std::uint64_t>(f->number_or(0.0));
    if (opt.have_flow && id != opt.flow) continue;
    FlowTrace& ft = flows[id];
    ++ft.events;
    if (ft.events == 1) {
      ft.origin_shard =
          static_cast<std::uint32_t>(num_of(e, "origin_shard", 0.0));
      ft.inject_epoch =
          static_cast<std::uint64_t>(num_of(e, "inject_epoch", 0.0));
    }
    const std::string kind = text_of(e, "kind");
    if (!is_emission(kind)) continue;
    Hop h;
    h.t = num_of(e, "t", 0.0);
    h.epoch = static_cast<std::uint64_t>(num_of(e, "epoch", 0.0));
    h.router = static_cast<std::uint32_t>(num_of(e, "router", 0.0));
    h.port = static_cast<std::uint32_t>(num_of(e, "port", 0.0));
    h.shard = static_cast<std::uint32_t>(num_of(e, "shard", 0.0));
    h.kind = kind;
    ft.hops.push_back(h);
  }
  if (flows.empty()) {
    std::printf("flows: none traced%s\n",
                opt.have_flow ? " (flow filter excluded everything)" : "");
    return;
  }
  std::printf("=== flow paths (%zu traced flow%s) ===\n", flows.size(),
              flows.size() == 1 ? "" : "s");
  std::size_t rendered = 0;
  for (const auto& [id, ft] : flows) {
    if (rendered++ >= opt.max_flows) {
      std::printf("  ... %zu more flows (--flows N to raise the cap)\n",
                  flows.size() - opt.max_flows);
      break;
    }
    const std::vector<std::uint32_t> path = first_visit_path(ft);
    std::printf("flow %llu (origin shard %u, inject epoch %llu): ",
                static_cast<unsigned long long>(id), ft.origin_shard,
                static_cast<unsigned long long>(ft.inject_epoch));
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::printf("%sr%u", i == 0 ? "" : " -> ", path[i]);
    }
    std::printf("  [%zu events, %zu emissions]\n", ft.events, ft.hops.size());
    if (opt.have_flow) {
      for (const Hop& h : ft.hops) {
        std::printf("  t=%.6f epoch=%llu shard=%u r%u:p%u %s\n", h.t,
                    static_cast<unsigned long long>(h.epoch), h.shard,
                    h.router, h.port, h.kind.c_str());
      }
    }
  }
}

void render_spans(const obs::Json& chaos) {
  const obs::Json* spans = chaos.find("spans");
  if (spans == nullptr || spans->items().empty()) {
    std::printf("spans: none (no applied fault events)\n");
    return;
  }
  std::printf("=== fault spans ===\n");
  std::printf("%-4s %-14s %10s %12s %12s %10s %9s %7s %9s %7s\n", "idx",
              "kind", "injected", "first_impact", "reconverged", "verified",
              "latency", "dirty", "vstates", "cached");
  for (const obs::Json& sp : spans->items()) {
    const double inj = num_of(sp, "t_injected", 0.0);
    const double imp = num_of(sp, "t_first_impact", -1.0);
    const double rec = num_of(sp, "t_reconverged", -1.0);
    const double ver = num_of(sp, "t_verified", -1.0);
    char imp_s[24] = "-";
    char rec_s[24] = "-";
    char ver_s[24] = "-";
    char lat_s[24] = "-";
    if (imp >= 0.0) std::snprintf(imp_s, sizeof(imp_s), "%.4f", imp);
    if (rec >= 0.0) std::snprintf(rec_s, sizeof(rec_s), "%.4f", rec);
    if (ver >= 0.0) std::snprintf(ver_s, sizeof(ver_s), "%.4f", ver);
    if (ver >= 0.0) std::snprintf(lat_s, sizeof(lat_s), "%.4f", ver - inj);
    std::printf("%-4.0f %-14s %10.4f %12s %12s %10s %9s %7.0f %9.0f %7.0f\n",
                num_of(sp, "event_index", 0.0), text_of(sp, "kind").c_str(),
                inj, imp_s, rec_s, ver_s, lat_s,
                num_of(sp, "dirty_destinations", 0.0),
                num_of(sp, "states_explored", 0.0),
                num_of(sp, "cache_hits", 0.0));
  }
  if (const obs::Json* classes = chaos.find("recovery_by_class")) {
    if (!classes->members().empty()) {
      std::printf("=== recovery latency by failure class ===\n");
      std::printf("%-14s %6s %9s %9s %9s\n", "class", "count", "mean(s)",
                  "min(s)", "max(s)");
      for (const auto& [kind, agg] : classes->members()) {
        std::printf("%-14s %6.0f %9.4f %9.4f %9.4f\n", kind.c_str(),
                    num_of(agg, "count", 0.0), num_of(agg, "mean_s", 0.0),
                    num_of(agg, "min_s", 0.0), num_of(agg, "max_s", 0.0));
      }
    }
  }
}

void render_links(const obs::Json& links, std::size_t top_n) {
  if (links.items().empty()) {
    std::printf("links: none recorded\n");
    return;
  }
  std::printf("=== top congested inter-AS links ===\n");
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "link", "bytes", "pkts",
              "ovf_drops", "down_drops", "queue");
  std::size_t n = 0;
  for (const obs::Json& l : links.items()) {
    if (n++ >= top_n) break;
    char name[40];
    std::snprintf(name, sizeof(name), "r%.0f:p%.0f->r%.0f",
                  num_of(l, "router", 0.0), num_of(l, "port", 0.0),
                  num_of(l, "peer_router", 0.0));
    std::printf("%-12s %10.0f %10.0f %10.0f %10.0f %7.1f%%\n", name,
                num_of(l, "bytes_sent", 0.0), num_of(l, "pkts_sent", 0.0),
                num_of(l, "drops_overflow", 0.0),
                num_of(l, "drops_down", 0.0),
                100.0 * num_of(l, "queue_ratio", 0.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 1;
  }

  std::string text;
  if (opt.path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(opt.path);
    if (!in) {
      std::fprintf(stderr, "mifo-trace: cannot open %s\n", opt.path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  const auto parsed = obs::Json::parse(text);
  if (!parsed) {
    std::fprintf(stderr, "mifo-trace: %s: malformed JSON\n",
                 opt.path.c_str());
    return 1;
  }
  const obs::Json& root = *parsed;
  const std::string schema = text_of(root, "schema");
  if (schema != "mifo.run_artifact.v1") {
    std::fprintf(stderr, "mifo-trace: unexpected schema '%s'\n",
                 schema.c_str());
    if (schema.empty()) return 1;
  }

  if (opt.check) return check_artifact(root);

  std::printf("artifact: %s (bench %s)\n", opt.path.c_str(),
              text_of(root, "bench").c_str());
  const obs::Json* tl = root.find("timeline");
  if (tl != nullptr && tl->find("events") != nullptr) {
    std::printf("timeline: %zu events, %.0f overwritten\n",
                tl->find("events")->items().size(),
                num_of(*tl, "overwritten", 0.0));
    render_flows(*tl, opt);
  } else {
    std::printf("timeline: absent (run without tracing)\n");
  }
  if (const obs::Json* chaos = root.find("chaos")) {
    render_spans(*chaos);
  }
  if (const obs::Json* links = root.find("links")) {
    render_links(*links, opt.links);
  }
  return 0;
}
