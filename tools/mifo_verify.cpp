// mifo-verify — static forwarding-state verifier (docs/VERIFICATION.md).
//
// Builds a concrete deployment (generated or loaded topology -> border
// routers, BGP-derived FIBs, one daemon tick to program alt ports), then
// statically proves per-destination loop-freedom of the installed state and
// lints FIB/RIB consistency — no packets are run.
//
//   mifo-verify --gen 300 --seed 11            # generated power-law topology
//   mifo-verify --topo mifo_topology.txt       # CAIDA-style text dump
//   mifo-verify --gen 120 --mutate-valley      # plant an Eq.3 violation;
//                                              # expects a reported cycle
//
// Exit status: 0 = loop-free and lint-clean, 1 = usage/input error,
// 2 = cycle found or lint issues.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "testbed/emulation.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "topo/serialization.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/lint.hpp"

using namespace mifo;

namespace {

struct Options {
  std::string topo_file;
  std::size_t gen_ases = 200;
  std::uint64_t seed = 1;
  std::size_t dests = 8;
  bool expand_tier1 = false;
  bool mutate_valley = false;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--topo FILE | --gen N] [--seed S] [--dests K]\n"
      "          [--expand-tier1] [--mutate-valley] [-q]\n"
      "  --topo FILE      load a CAIDA-style topology dump\n"
      "  --gen N          generate an N-AS power-law topology (default 200)\n"
      "  --seed S         generator seed (default 1)\n"
      "  --dests K        destination prefixes to verify (default 8)\n"
      "  --expand-tier1   per-adjacency border routers in tier-1 ASes\n"
      "  --mutate-valley  plant an Eq.3-violating deflection ring and\n"
      "                   expect the verifier to report the cycle\n"
      "  -q               verdict only\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--topo") {
      const char* v = next();
      if (!v) return false;
      opt.topo_file = v;
    } else if (arg == "--gen") {
      const char* v = next();
      if (!v) return false;
      opt.gen_ases = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--dests") {
      const char* v = next();
      if (!v) return false;
      opt.dests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--expand-tier1") {
      opt.expand_tier1 = true;
    } else if (arg == "--mutate-valley") {
      opt.mutate_valley = true;
    } else if (arg == "-q") {
      opt.quiet = true;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return opt.gen_ases >= 4 && opt.dests >= 1;
}

/// Three mutually-peered ASes (a peering triangle) — the Fig. 2(a) shape
/// the --mutate-valley demo wires into a deflection ring.
std::vector<AsId> find_peering_triangle(const topo::AsGraph& g) {
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    const auto nbs = g.neighbors(a);
    for (std::size_t x = 0; x < nbs.size(); ++x) {
      if (nbs[x].rel != topo::Rel::Peer || !(a < nbs[x].as)) continue;
      for (std::size_t y = x + 1; y < nbs.size(); ++y) {
        if (nbs[y].rel != topo::Rel::Peer || !(a < nbs[y].as)) continue;
        if (g.rel(nbs[x].as, nbs[y].as) == topo::Rel::Peer) {
          return {a, nbs[x].as, nbs[y].as};
        }
      }
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 1;
  }

  topo::AsGraph g;
  if (!opt.topo_file.empty()) {
    std::ifstream in(opt.topo_file);
    if (!in) {
      std::fprintf(stderr, "mifo-verify: cannot open %s\n",
                   opt.topo_file.c_str());
      return 1;
    }
    g = topo::parse(in);
  } else {
    topo::GeneratorParams gp;
    gp.num_ases = opt.gen_ases;
    gp.seed = opt.seed;
    g = topo::generate_topology(gp);
  }
  if (!opt.quiet) {
    std::printf("topology: %s\n",
                topo::attributes_report(topo::attributes(g)).c_str());
  }

  // Destination prefixes: one host per chosen AS, spread across the id
  // space (deterministic; includes AS 0 and the last AS).
  const std::size_t n = g.num_ases();
  std::vector<bool> expand(n, false);
  if (opt.expand_tier1 && !opt.mutate_valley) {
    for (std::size_t i = 0; i < n; ++i) {
      expand[i] = g.info(AsId(static_cast<std::uint32_t>(i))).tier == 1;
    }
  }
  testbed::EmulationBuilder builder(g, expand);
  const std::size_t num_dests = std::min(opt.dests, n);
  for (std::size_t i = 0; i < num_dests; ++i) {
    const std::size_t as = i * (n - 1) / (num_dests > 1 ? num_dests - 1 : 1);
    builder.attach_host(AsId(static_cast<std::uint32_t>(as)));
  }
  auto em = builder.finalize();
  dp::Network& net = *em.net;

  // Full MIFO deployment: flag every router, then one daemon tick per AS to
  // program the alt ports exactly as a live system would.
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : em.daemons) daemon->tick(net, 0.0);

  if (opt.mutate_valley) {
    const std::vector<AsId> ring = find_peering_triangle(g);
    if (ring.size() != 3) {
      std::fprintf(stderr,
                   "mifo-verify: no peering triangle to mutate in this "
                   "topology\n");
      return 1;
    }
    // Point each ring AS's alt_port clockwise along the peering ring for
    // one destination prefix, and disable the Tag-Check on those routers —
    // the precise state Eq. 3 exists to forbid (Fig. 2(a)). The prefix must
    // be owned outside the ring, else local delivery terminates the walk.
    dp::Addr dst = dp::kInvalidAddr;
    for (const auto& att : em.hosts) {
      if (att.as != ring[0] && att.as != ring[1] && att.as != ring[2]) {
        dst = att.addr;
        break;
      }
    }
    if (dst == dp::kInvalidAddr) {
      std::fprintf(stderr, "mifo-verify: no prefix owned outside the ring\n");
      return 1;
    }
    for (int i = 0; i < 3; ++i) {
      const AsId as = ring[i];
      const AsId nxt = ring[(i + 1) % 3];
      const auto* eg = em.wirings[as.value()].egress_to(nxt);
      if (eg == nullptr || !net.router(eg->router).fib().contains(dst)) {
        std::fprintf(stderr, "mifo-verify: mutation target unreachable\n");
        return 1;
      }
      net.router(eg->router).fib().set_alt(dst, eg->port);
      net.router(eg->router).config().enforce_tag_check = false;
    }
    if (!opt.quiet) {
      std::printf("mutated: Tag-Check disabled on peering ring AS%u-AS%u-"
                  "AS%u, alt ports wired clockwise for dst=%u\n",
                  ring[0].value(), ring[1].value(), ring[2].value(), dst);
    }
  }

  std::size_t alt_routes = 0;
  for (const dp::Router& r : net.routers()) {
    alt_routes += r.fib().num_alt_routes();
  }

  const auto loop_check = verify::check_loop_freedom(net);
  auto issues = verify::lint_topology(g);
  std::vector<std::pair<dp::Addr, AsId>> owners;
  owners.reserve(em.hosts.size());
  for (const auto& att : em.hosts) owners.emplace_back(att.addr, att.as);
  const auto deployment_issues =
      verify::lint_deployment(net, g, em.daemons, owners);
  issues.insert(issues.end(), deployment_issues.begin(),
                deployment_issues.end());

  if (!opt.quiet) {
    std::printf("deployment: %zu routers, %zu prefixes, %zu alt routes "
                "installed\n",
                net.num_routers(), loop_check.stats.destinations, alt_routes);
    std::printf("deflection graph: %zu states, %zu edges explored\n",
                loop_check.stats.states, loop_check.stats.edges);
    for (const auto& issue : issues) {
      std::printf("lint: %s\n", issue.to_string().c_str());
    }
  }

  for (const auto& cycle : loop_check.cycles) {
    std::printf("COUNTEREXAMPLE %s\n", cycle.to_string().c_str());
  }
  if (loop_check.loop_free && issues.empty()) {
    std::printf("verdict: LOOP-FREE (%zu destinations, lint clean)\n",
                loop_check.stats.destinations);
    return 0;
  }
  std::printf("verdict: %s (%zu cycles, %zu lint issues)\n",
              loop_check.loop_free ? "LINT-DIRTY" : "CYCLE-FOUND",
              loop_check.cycles.size(), issues.size());
  return 2;
}
