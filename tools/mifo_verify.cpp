// mifo-verify — static forwarding-state verifier (docs/VERIFICATION.md).
//
// Builds a concrete deployment (generated or loaded topology -> border
// routers, BGP-derived FIBs, one daemon tick to program alt ports), then
// statically proves per-destination loop-freedom of the installed state and
// lints FIB/RIB consistency — no packets are run.
//
//   mifo-verify --gen 300 --seed 11            # generated power-law topology
//   mifo-verify --topo mifo_topology.txt       # CAIDA-style text dump
//   mifo-verify --gen 120 --mutate-valley      # plant an Eq.3 violation;
//                                              # expects a reported cycle
//   mifo-verify --gen 120 --mutate-blackhole   # strand a prefix at a transit
//                                              # router; expects a blackhole
//   mifo-verify --gen 300 --incremental        # dirty-set engine + full-
//                                              # prover differential
//
// Exit status: 0 = loop-free, valley-free and lint-clean, 1 = usage/input
// error, 2 = cycle / valley / blackhole found, lint issues, or (under
// --incremental) an incremental-vs-full differential mismatch.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "dataplane/change_log.hpp"
#include "testbed/emulation.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "topo/serialization.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/incremental.hpp"
#include "verify/lint.hpp"
#include "verify/reachability.hpp"
#include "verify/valley.hpp"

using namespace mifo;

namespace {

struct Options {
  std::string topo_file;
  std::size_t gen_ases = 200;
  std::uint64_t seed = 1;
  std::size_t dests = 8;
  bool expand_tier1 = false;
  bool mutate_valley = false;
  bool mutate_blackhole = false;
  bool blackhole = false;
  bool incremental = false;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--topo FILE | --gen N] [--seed S] [--dests K]\n"
      "          [--expand-tier1] [--incremental] [--blackhole]\n"
      "          [--mutate-valley] [--mutate-blackhole] [-q]\n"
      "  --topo FILE      load a CAIDA-style topology dump\n"
      "  --gen N          generate an N-AS power-law topology (default 200)\n"
      "  --seed S         generator seed (default 1)\n"
      "  --dests K        destination prefixes to verify (default 8)\n"
      "  --expand-tier1   per-adjacency border routers in tier-1 ASes\n"
      "  --incremental    prove via the dirty-set engine and cross-check\n"
      "                   every verdict against the full provers\n"
      "  --blackhole      also run the reachability/blackhole analysis\n"
      "  --mutate-valley  plant an Eq.3-violating deflection ring and\n"
      "                   expect the verifier to report the cycle\n"
      "  --mutate-blackhole  strand one prefix at a transit router and\n"
      "                   expect the blackhole analysis to report it\n"
      "  -q               verdict only\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--topo") {
      const char* v = next();
      if (!v) return false;
      opt.topo_file = v;
    } else if (arg == "--gen") {
      const char* v = next();
      if (!v) return false;
      opt.gen_ases = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--dests") {
      const char* v = next();
      if (!v) return false;
      opt.dests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--expand-tier1") {
      opt.expand_tier1 = true;
    } else if (arg == "--mutate-valley") {
      opt.mutate_valley = true;
    } else if (arg == "--mutate-blackhole") {
      opt.mutate_blackhole = true;
      opt.blackhole = true;
    } else if (arg == "--blackhole") {
      opt.blackhole = true;
    } else if (arg == "--incremental") {
      opt.incremental = true;
    } else if (arg == "-q") {
      opt.quiet = true;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return opt.gen_ases >= 4 && opt.dests >= 1;
}

/// Three mutually-peered ASes (a peering triangle) — the Fig. 2(a) shape
/// the --mutate-valley demo wires into a deflection ring.
std::vector<AsId> find_peering_triangle(const topo::AsGraph& g) {
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    const auto nbs = g.neighbors(a);
    for (std::size_t x = 0; x < nbs.size(); ++x) {
      if (nbs[x].rel != topo::Rel::Peer || !(a < nbs[x].as)) continue;
      for (std::size_t y = x + 1; y < nbs.size(); ++y) {
        if (nbs[y].rel != topo::Rel::Peer || !(a < nbs[y].as)) continue;
        if (g.rel(nbs[x].as, nbs[y].as) == topo::Rel::Peer) {
          return {a, nbs[x].as, nbs[y].as};
        }
      }
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 1;
  }

  topo::AsGraph g;
  if (!opt.topo_file.empty()) {
    std::ifstream in(opt.topo_file);
    if (!in) {
      std::fprintf(stderr, "mifo-verify: cannot open %s\n",
                   opt.topo_file.c_str());
      return 1;
    }
    g = topo::parse(in);
  } else {
    topo::GeneratorParams gp;
    gp.num_ases = opt.gen_ases;
    gp.seed = opt.seed;
    g = topo::generate_topology(gp);
  }
  if (!opt.quiet) {
    std::printf("topology: %s\n",
                topo::attributes_report(topo::attributes(g)).c_str());
  }

  // Destination prefixes: one host per chosen AS, spread across the id
  // space (deterministic; includes AS 0 and the last AS).
  const std::size_t n = g.num_ases();
  std::vector<bool> expand(n, false);
  if (opt.expand_tier1 && !opt.mutate_valley) {
    for (std::size_t i = 0; i < n; ++i) {
      expand[i] = g.info(AsId(static_cast<std::uint32_t>(i))).tier == 1;
    }
  }
  testbed::EmulationBuilder builder(g, expand);
  const std::size_t num_dests = std::min(opt.dests, n);
  for (std::size_t i = 0; i < num_dests; ++i) {
    const std::size_t as = i * (n - 1) / (num_dests > 1 ? num_dests - 1 : 1);
    builder.attach_host(AsId(static_cast<std::uint32_t>(as)));
  }
  auto em = builder.finalize();
  dp::Network& net = *em.net;

  // Full MIFO deployment: flag every router, then one daemon tick per AS to
  // program the alt ports exactly as a live system would.
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : em.daemons) daemon->tick(net, 0.0);

  std::vector<std::pair<dp::Addr, AsId>> owners;
  owners.reserve(em.hosts.size());
  for (const auto& att : em.hosts) owners.emplace_back(att.addr, att.as);

  // --incremental: cold-prove everything through the dirty-set engine, then
  // let the mutation hooks record what changes; the warm pass below re-proves
  // only the dirtied destinations and must match the full provers exactly.
  dp::ChangeLog change_log;
  verify::ChangeSet changes;
  verify::IncrementalVerifier inc(verify::IncrementalConfig{
      .lint = true, .valley = true, .blackhole = opt.blackhole});
  if (opt.incremental) {
    net.attach_change_log(&change_log);
    const auto cold = inc.check(net, g, em.daemons, owners, changes);
    if (!opt.quiet) {
      std::printf("incremental: cold pass proved %zu destinations "
                  "(%zu states explored)\n",
                  cold.stats.dirty_destinations, cold.stats.states_explored);
    }
  }

  if (opt.mutate_valley) {
    const std::vector<AsId> ring = find_peering_triangle(g);
    if (ring.size() != 3) {
      std::fprintf(stderr,
                   "mifo-verify: no peering triangle to mutate in this "
                   "topology\n");
      return 1;
    }
    // Point each ring AS's alt_port clockwise along the peering ring for
    // one destination prefix, and disable the Tag-Check on those routers —
    // the precise state Eq. 3 exists to forbid (Fig. 2(a)). The prefix must
    // be owned outside the ring, else local delivery terminates the walk.
    dp::Addr dst = dp::kInvalidAddr;
    for (const auto& att : em.hosts) {
      if (att.as != ring[0] && att.as != ring[1] && att.as != ring[2]) {
        dst = att.addr;
        break;
      }
    }
    if (dst == dp::kInvalidAddr) {
      std::fprintf(stderr, "mifo-verify: no prefix owned outside the ring\n");
      return 1;
    }
    for (int i = 0; i < 3; ++i) {
      const AsId as = ring[i];
      const AsId nxt = ring[(i + 1) % 3];
      const auto* eg = em.wirings[as.value()].egress_to(nxt);
      if (eg == nullptr || !net.router(eg->router).fib().contains(dst)) {
        std::fprintf(stderr, "mifo-verify: mutation target unreachable\n");
        return 1;
      }
      net.router(eg->router).fib().set_alt(dst, eg->port);
      net.router(eg->router).config().enforce_tag_check = false;
      // The config write bypasses the hooked mutators; record it by hand so
      // the incremental engine re-proves the ring routers' destinations.
      if (auto* log = net.change_log()) log->note_config(eg->router);
    }
    if (!opt.quiet) {
      std::printf("mutated: Tag-Check disabled on peering ring AS%u-AS%u-"
                  "AS%u, alt ports wired clockwise for dst=%u\n",
                  ring[0].value(), ring[1].value(), ring[2].value(), dst);
    }
  }

  if (opt.mutate_blackhole) {
    // Strand one prefix: remove the FIB entry at a router some neighbor's
    // default path forwards through. Traffic entering upstream reaches a
    // router with no route — the exact no-route blackhole the reachability
    // analysis exists to catch.
    bool planted = false;
    for (const auto& att : em.hosts) {
      const dp::Addr dst = att.addr;
      for (std::size_t r = 0; r < net.num_routers() && !planted; ++r) {
        const dp::Router& router =
            net.router(RouterId(static_cast<std::uint32_t>(r)));
        const auto fe = router.fib().lookup(dst);
        if (!fe) continue;
        const dp::Port& def = router.port(fe->out_port);
        if (def.kind != dp::PortKind::Ebgp || !def.peer.is_router()) continue;
        const RouterId victim(def.peer.id);
        if (!net.router(victim).fib().contains(dst)) continue;
        net.router(victim).fib().remove(dst);
        planted = true;
        if (!opt.quiet) {
          std::printf("mutated: FIB entry for dst=%u removed at r%u (r%zu "
                      "still forwards to it)\n",
                      dst, victim.value(), r);
        }
      }
      if (planted) break;
    }
    if (!planted) {
      std::fprintf(stderr, "mifo-verify: no transit FIB entry to strand\n");
      return 1;
    }
  }

  std::size_t alt_routes = 0;
  for (const dp::Router& r : net.routers()) {
    alt_routes += r.fib().num_alt_routes();
  }

  // Verification proper. Under --incremental the warm dirty-set pass
  // produces the verdicts and the untouched full provers act as the oracle;
  // otherwise the full provers run directly.
  verify::LoopCheck loop_check;
  verify::ValleyCheck valley_check;
  verify::ReachabilityCheck reach;
  std::vector<verify::LintIssue> deployment_issues;
  bool differential_ok = true;

  const auto rendered = [](const auto& items) {
    std::vector<std::string> out;
    out.reserve(items.size());
    for (const auto& item : items) out.push_back(item.to_string());
    std::sort(out.begin(), out.end());
    return out;
  };

  if (opt.incremental) {
    changes.drain(change_log);
    auto warm = inc.check(net, g, em.daemons, owners, changes);
    changes.clear();
    if (!opt.quiet) {
      std::printf("incremental: warm pass re-proved %zu/%zu destinations "
                  "(%zu cache hits, %zu states explored)\n",
                  warm.stats.dirty_destinations, warm.stats.destinations,
                  warm.stats.cache_hits, warm.stats.states_explored);
    }
    // Differential oracle: the merged incremental result must be verdict-
    // and counterexample-identical to a from-scratch full run (lints
    // compare as multisets — the orders differ by design).
    const auto full_loop = verify::check_loop_freedom(net);
    const auto full_valley = verify::check_valley_freedom(net);
    const auto full_lint = verify::lint_deployment(net, g, em.daemons, owners);
    differential_ok =
        full_loop.loop_free == warm.loop.loop_free &&
        rendered(full_loop.cycles) == rendered(warm.loop.cycles) &&
        rendered(full_valley.violations) == rendered(warm.valley.violations) &&
        rendered(full_lint) == rendered(warm.lint);
    if (opt.blackhole) {
      const auto full_reach = verify::check_reachability(net);
      differential_ok =
          differential_ok &&
          rendered(full_reach.blackholes) == rendered(warm.reach.blackholes);
    }
    std::printf("differential: incremental verdicts %s the full provers\n",
                differential_ok ? "identical to" : "DIVERGED from");
    loop_check = std::move(warm.loop);
    valley_check = std::move(warm.valley);
    reach = std::move(warm.reach);
    deployment_issues = std::move(warm.lint);
  } else {
    loop_check = verify::check_loop_freedom(net);
    valley_check = verify::check_valley_freedom(net);
    if (opt.blackhole) reach = verify::check_reachability(net);
    deployment_issues = verify::lint_deployment(net, g, em.daemons, owners);
  }
  auto issues = verify::lint_topology(g);
  issues.insert(issues.end(), deployment_issues.begin(),
                deployment_issues.end());

  if (!opt.quiet) {
    std::printf("deployment: %zu routers, %zu prefixes, %zu alt routes "
                "installed\n",
                net.num_routers(), loop_check.stats.destinations, alt_routes);
    std::printf("deflection graph: %zu states, %zu edges explored\n",
                loop_check.stats.states, loop_check.stats.edges);
    for (const auto& issue : issues) {
      std::printf("lint: %s\n", issue.to_string().c_str());
    }
  }

  for (const auto& cycle : loop_check.cycles) {
    std::printf("COUNTEREXAMPLE %s\n", cycle.to_string().c_str());
  }
  for (const auto& v : valley_check.violations) {
    std::printf("COUNTEREXAMPLE valley %s\n", v.to_string().c_str());
  }
  for (const auto& b : reach.blackholes) {
    std::printf("COUNTEREXAMPLE %s\n", b.to_string().c_str());
  }
  const bool clean = loop_check.loop_free && valley_check.valley_free &&
                     reach.clean && issues.empty() && differential_ok;
  if (clean) {
    std::printf("verdict: LOOP-FREE (%zu destinations, lint clean)\n",
                loop_check.stats.destinations);
    return 0;
  }
  const char* verdict = "LINT-DIRTY";
  if (!loop_check.loop_free) {
    verdict = "CYCLE-FOUND";
  } else if (!valley_check.valley_free) {
    verdict = "VALLEY-FOUND";
  } else if (!reach.clean) {
    verdict = "BLACKHOLE-FOUND";
  } else if (!differential_ok) {
    verdict = "DIFFERENTIAL-MISMATCH";
  }
  std::printf("verdict: %s (%zu cycles, %zu valleys, %zu blackholes, "
              "%zu lint issues)\n",
              verdict, loop_check.cycles.size(),
              valley_check.violations.size(), reach.blackholes.size(),
              issues.size());
  return 2;
}
